//! The [`TrainingSession`] builder and the streaming minibatch pipeline.
//!
//! This is the composable entry point to the end-to-end pipeline of §6
//! (Figure 3).  A session binds a dataset, a [`Sampler`] (which algorithm)
//! and a [`SamplingBackend`] (which distribution strategy) and offers two
//! views of an epoch:
//!
//! * [`TrainingSession::stream`] — a [`MinibatchStream`] iterator with
//!   **double-buffered bulk prefetch**: a background thread samples bulk
//!   group `g + 1` through the backend while the consumer trains on group
//!   `g`, making the paper's §6 sampling/training overlap a first-class API
//!   instead of trainer-internal logic;
//! * [`TrainingSession::train`] — the full training loop (feature fetching,
//!   forward/backward propagation, optimizer steps), running single-device
//!   over the stream for the local backend, or bulk-synchronous data-parallel
//!   (1.5D feature store + gradient all-reduce) for distributed backends.
//!
//! # Example
//!
//! ```
//! use dmbs_gnn::session::TrainingSession;
//! use dmbs_graph::datasets::{build_dataset, DatasetConfig};
//! use dmbs_sampling::{BulkSamplerConfig, GraphSageSampler, LocalBackend};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = DatasetConfig::products_like(7);
//! cfg.feature_dim = 8;
//! cfg.num_classes = 4;
//! cfg.train_fraction = 0.5;
//! let dataset = build_dataset(&cfg, &mut StdRng::seed_from_u64(1))?;
//!
//! let session = TrainingSession::builder()
//!     .dataset(dataset)
//!     .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
//!     .backend(LocalBackend::new(BulkSamplerConfig::new(16, 4))?)
//!     .hidden_dim(8)
//!     .epochs(1)
//!     .seed(3)
//!     .build()?;
//!
//! // Stream minibatches (bulk group g+1 samples while g is consumed) …
//! let mut count = 0;
//! for minibatch in session.stream(0)? {
//!     let minibatch = minibatch?;
//!     assert!(!minibatch.sample.batch.is_empty());
//!     count += 1;
//! }
//! assert!(count > 0);
//!
//! // … or run the whole training loop.
//! let report = session.train()?;
//! assert_eq!(report.epochs.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::error::GnnError;
use crate::features::{
    ensure_plan_fresh, FeatureCache, FeatureCacheConfig, FeatureStore, InvalidationPolicy,
    PendingPrefetch,
};
use crate::metrics::{accuracy, RunningMean};
use crate::model::SageModel;
use crate::optim::{Optimizer, Sgd};
use crate::serve::ModelSnapshot;
use crate::trainer::{EpochStats, TrainingReport};
use crate::Result;
use dmbs_comm::tune::{
    self, CacheKnob, ProbeEpoch, ProbeSet, TuningGrid, TuningModel, TuningOutcome,
};
use dmbs_comm::{
    Codec, CommStats, Communicator, Group, Phase, PhaseProfile, ProcessGrid, TransportSelect,
};
use dmbs_graph::datasets::Dataset;
use dmbs_graph::minibatch::MinibatchPlan;
use dmbs_graph::{GraphIngest, IngestMode};
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::{CsrMatrix, DeltaBatch, DenseMatrix};
use dmbs_sampling::backend::group_seed;
use dmbs_sampling::{BulkSampleOutput, FetchPlan, MinibatchSample, Sampler, SamplingBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Short alias so the fluent entry point reads
/// `Session::builder().dataset(d).sampler(s).backend(b).build()`.
pub type Session<S, B> = TrainingSession<S, B>;

/// One scheduled graph mutation of a dynamic-graph training run: after epoch
/// `after_epoch` finishes (its stats already booked), every rank applies
/// `batch` to its adjacency and invalidates cached feature state per the
/// session's [`InvalidationPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct IngestEvent {
    /// Epoch after which the batch lands (0-based; must be `< epochs`).
    pub after_epoch: usize,
    /// The edge insert/delete batch.
    pub batch: DeltaBatch,
}

/// Hyper-parameters a session adds on top of its sampler and backend.
/// `pub(crate)` (fields included) so the [`crate::worker`] module can rebuild
/// an exact session from a wire-decoded spec in a rank process.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SessionConfig {
    pub(crate) batch_size: usize,
    pub(crate) bulk_size: usize,
    pub(crate) hidden_dim: usize,
    pub(crate) learning_rate: f64,
    pub(crate) epochs: usize,
    pub(crate) seed: u64,
    pub(crate) replicate_features: bool,
    pub(crate) feature_replication: Option<usize>,
    pub(crate) evaluate: bool,
    pub(crate) parallelism: Parallelism,
    pub(crate) feature_cache: FeatureCacheConfig,
    pub(crate) overlap: bool,
    pub(crate) transport: TransportSelect,
    pub(crate) wire_codec: Codec,
    pub(crate) grad_top_k: Option<usize>,
    pub(crate) ingest: Vec<IngestEvent>,
    pub(crate) ingest_mode: IngestMode,
    pub(crate) invalidation: InvalidationPolicy,
}

/// The per-rank result of the distributed training loop: per-epoch
/// `(profile, comm delta, mean loss)` plus the rank's final model parameters.
pub(crate) type RankEpochs = (Vec<(PhaseProfile, CommStats, f64)>, Vec<DenseMatrix>);

/// One sampled minibatch yielded by a [`MinibatchStream`].
#[derive(Debug, Clone, PartialEq)]
pub struct Minibatch {
    /// Epoch this minibatch belongs to.
    pub epoch: usize,
    /// Bulk group index within the epoch.
    pub group: usize,
    /// Batch index within the epoch (position in the shuffled plan).
    pub index: usize,
    /// The sampled `L`-layer neighborhood.
    pub sample: MinibatchSample,
}

type GroupMessage = Result<(usize, usize, BulkSampleOutput, FetchPlan)>;

/// One in-flight stage of the software-pipelined distributed training loop:
/// a sampled bulk group whose pinned prefetch (if any) has been posted but
/// not yet completed, plus the modeled communication seconds hoisted ahead of
/// the previous group's training (the candidate for overlap credit).
#[derive(Debug)]
struct PipelineStage {
    /// `(index within the group, sample)` for every minibatch this rank
    /// trains.
    samples: Vec<(usize, dmbs_sampling::MinibatchSample)>,
    /// The posted (not yet completed) pinned prefetch of this stage.
    pending: Option<PendingPrefetch>,
    /// Comm-only profile of the work hoisted while the previous group
    /// trained: sampling collectives plus the prefetch rounds.
    hoisted: PhaseProfile,
}

/// An iterator over one epoch's sampled minibatches with double-buffered
/// bulk prefetch: a worker thread runs the backend one bulk group ahead of
/// the consumer (the channel holds at most one finished group).
///
/// Yields minibatches in plan order.  After exhaustion,
/// [`MinibatchStream::sampling_profile`] and [`MinibatchStream::comm_stats`]
/// expose the accumulated sampling-phase statistics.
#[derive(Debug)]
pub struct MinibatchStream {
    epoch: usize,
    rx: Option<mpsc::Receiver<GroupMessage>>,
    pending: VecDeque<Minibatch>,
    profile: PhaseProfile,
    comm: CommStats,
    /// Per-group communication-avoiding fetch plans, indexed by group.  The
    /// worker thread computes each plan right after sampling its group, so
    /// planning overlaps the consumer's compute on the previous group.
    plans: Vec<FetchPlan>,
    worker: Option<JoinHandle<()>>,
    failed: bool,
}

impl MinibatchStream {
    /// Accumulated sampling-phase timing of the groups consumed so far.
    pub fn sampling_profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Accumulated sampling communication statistics of the groups consumed
    /// so far.
    pub fn comm_stats(&self) -> &CommStats {
        &self.comm
    }

    /// The communication-avoiding fetch plan of bulk group `group` — the
    /// deduplicated union of the group's layer-0 frontiers, computed on the
    /// sampling worker thread (§6 overlap).  Available from the moment the
    /// group's first minibatch is yielded.
    pub fn group_plan(&self, group: usize) -> Option<&FetchPlan> {
        self.plans.get(group)
    }

    /// Joins the worker thread; returns `true` if it panicked.
    fn join_worker(&mut self) -> bool {
        self.rx = None;
        match self.worker.take() {
            Some(handle) => handle.join().is_err(),
            None => false,
        }
    }
}

impl Iterator for MinibatchStream {
    type Item = Result<Minibatch>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(mb) = self.pending.pop_front() {
                return Some(Ok(mb));
            }
            if self.failed {
                return None;
            }
            let message = match self.rx.as_ref()?.recv() {
                Ok(message) => message,
                Err(_) => {
                    // The channel closed: either the worker finished the
                    // epoch, or it panicked mid-sampling — the latter must
                    // surface as an error, not a truncated epoch.
                    self.failed = true;
                    if self.join_worker() {
                        return Some(Err(GnnError::InvalidConfig(
                            "minibatch sampling worker panicked".into(),
                        )));
                    }
                    return None;
                }
            };
            match message {
                Ok((group, base_index, output, plan)) => {
                    self.profile.merge_sum(&output.profile);
                    self.comm.merge(&output.comm_stats);
                    debug_assert_eq!(self.plans.len(), group, "groups arrive in order");
                    self.plans.push(plan);
                    let epoch = self.epoch;
                    self.pending.extend(output.minibatches.into_iter().enumerate().map(
                        |(offset, sample)| Minibatch {
                            epoch,
                            group,
                            index: base_index + offset,
                            sample,
                        },
                    ));
                }
                Err(e) => {
                    self.failed = true;
                    self.join_worker();
                    return Some(Err(e));
                }
            }
        }
    }
}

impl Drop for MinibatchStream {
    fn drop(&mut self) {
        // Dropping the receiver makes the worker's next send fail, so it
        // exits even when the stream is abandoned mid-epoch.
        let _ = self.join_worker();
    }
}

/// Builder for [`TrainingSession`]; see the module docs for an example.
#[derive(Debug, Clone)]
pub struct SessionBuilder<S, B> {
    dataset: Option<Arc<Dataset>>,
    sampler: Option<S>,
    backend: Option<B>,
    batch_size: Option<usize>,
    bulk_size: Option<usize>,
    hidden_dim: usize,
    learning_rate: f64,
    epochs: usize,
    seed: u64,
    replicate_features: bool,
    feature_replication: Option<usize>,
    evaluate: bool,
    parallelism: Option<Parallelism>,
    workspace_reuse: Option<bool>,
    feature_cache: FeatureCacheConfig,
    overlap: bool,
    transport: TransportSelect,
    wire_codec: Codec,
    grad_top_k: Option<usize>,
    ingest: Vec<IngestEvent>,
    ingest_mode: IngestMode,
    invalidation: InvalidationPolicy,
}

impl<S, B> Default for SessionBuilder<S, B> {
    fn default() -> Self {
        SessionBuilder {
            dataset: None,
            sampler: None,
            backend: None,
            batch_size: None,
            bulk_size: None,
            hidden_dim: 256,
            learning_rate: 0.01,
            epochs: 3,
            seed: 0,
            replicate_features: true,
            feature_replication: None,
            evaluate: true,
            parallelism: None,
            workspace_reuse: None,
            feature_cache: FeatureCacheConfig::Off,
            overlap: false,
            transport: TransportSelect::Simulator,
            wire_codec: Codec::Exact,
            grad_top_k: None,
            ingest: Vec::new(),
            ingest_mode: IngestMode::default(),
            invalidation: InvalidationPolicy::default(),
        }
    }
}

impl<S: Sampler, B: SamplingBackend> SessionBuilder<S, B> {
    /// The dataset (graph + features + labels + train/test split) to train
    /// on.
    pub fn dataset(mut self, dataset: impl Into<Arc<Dataset>>) -> Self {
        self.dataset = Some(dataset.into());
        self
    }

    /// The sampling algorithm (GraphSAGE, LADIES, FastGCN, or any custom
    /// [`Sampler`]).
    pub fn sampler(mut self, sampler: S) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// The distribution strategy ([`dmbs_sampling::LocalBackend`],
    /// [`dmbs_sampling::ReplicatedBackend`] or
    /// [`dmbs_sampling::Partitioned1p5dBackend`]).
    pub fn backend(mut self, backend: B) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Overrides the minibatch size `b` (default: the backend's bulk
    /// configuration).
    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = Some(b);
        self
    }

    /// Overrides the bulk group size `k` — how many minibatches each
    /// prefetched sampling step covers (default: the backend's bulk
    /// configuration).  Must not exceed the backend's `bulk_size`: each
    /// session group must map to a single backend bulk group so the stream,
    /// eager sampling and the distributed training pipeline all draw
    /// identical samples.
    pub fn bulk(mut self, k: usize) -> Self {
        self.bulk_size = Some(k);
        self
    }

    /// Replication factor of the 1.5D feature-store partition used by
    /// distributed training (§6.2).  Defaults to the backend's
    /// `replication_c`.
    pub fn partition(mut self, c: usize) -> Self {
        self.feature_replication = Some(c);
        self
    }

    /// Disables feature replication (the "NoRep" configuration of Figure 6):
    /// the feature matrix is split across all ranks and fetching spans the
    /// whole world.
    pub fn without_feature_replication(mut self) -> Self {
        self.replicate_features = false;
        self
    }

    /// Hidden dimension of every SAGE layer (default 256, Table 4).
    pub fn hidden_dim(mut self, dim: usize) -> Self {
        self.hidden_dim = dim;
        self
    }

    /// SGD learning rate (default 0.01).
    pub fn learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Number of training epochs (default 3).
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Base RNG seed for model init, shuffling and sampling (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Skips the post-training test-set evaluation.
    pub fn without_evaluation(mut self) -> Self {
        self.evaluate = false;
        self
    }

    /// Shared-memory parallelism of the session's matrix kernels: the
    /// backend's bulk SpGEMM / per-row ITS *and* the model's propagation
    /// SpMMs all run on this many worker threads (default: the backend's own
    /// setting, serial unless configured).
    ///
    /// The parallel kernels are byte-identical to their serial forms, so
    /// this knob never changes what is sampled or trained — see the
    /// `stream_is_invariant_under_parallelism` test.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Whether the sampling kernels reuse the thread-local SpGEMM/extraction
    /// scratch workspace across kernel calls (default: the backend's own
    /// setting, reuse on).  Reuse spans every layer, minibatch and bulk
    /// group sampled on one thread; the streaming path spawns one sampling
    /// worker per epoch, so its workspace regrows once per epoch, while the
    /// distributed training path keeps each rank's workspace alive for the
    /// whole run.  Like [`SessionBuilder::parallelism`], this knob never
    /// changes what is sampled or trained — it only removes per-call scratch
    /// allocation from the probability and extraction steps.
    pub fn workspace_reuse(mut self, reuse: bool) -> Self {
        self.workspace_reuse = Some(reuse);
        self
    }

    /// The per-rank feature cache of the communication-avoiding §6.2
    /// pipeline (default [`FeatureCacheConfig::Off`]):
    ///
    /// * [`FeatureCacheConfig::EpochPinned`] — each bulk group's
    ///   [`FetchPlan`] (the deduplicated union of its layer-0 frontiers) is
    ///   prefetched with one all-to-allv round and pinned for the epoch, so
    ///   each remote feature row crosses the wire at most once per epoch and
    ///   the per-step fetch collectives disappear;
    /// * [`FeatureCacheConfig::Lru`] — a byte-budgeted read-through cache:
    ///   per-step collectives still run (ranks stay matched) but carry only
    ///   the misses.
    ///
    /// The cache is pure work avoidance: cached and uncached training are
    /// byte-identical (see the `tests/backend_equivalence.rs` sweep), only
    /// [`CommStats`] — words sent, cache hits/misses, words saved — differs.
    pub fn feature_cache(mut self, cache: FeatureCacheConfig) -> Self {
        self.feature_cache = cache;
        self
    }

    /// Software-pipelines the distributed training loop (default off): while
    /// bulk group `k` trains, group `k + 1` is sampled and — with the
    /// [`FeatureCacheConfig::EpochPinned`] cache — its prefetch all-to-allv
    /// is posted nonblocking, so the α–β communication bill hides behind
    /// propagation compute instead of adding to it.  The modeled time hidden
    /// this way is recorded as overlapped seconds
    /// ([`dmbs_comm::PhaseProfile::total_overlap`],
    /// [`dmbs_comm::CommStats::overlapped_time`]); the wire books themselves
    /// (words, messages, total modeled time) are untouched.
    ///
    /// The overlapped schedule is **byte-identical** to the synchronous one —
    /// same losses, same accuracy, same fetched rows, same per-epoch word
    /// counts — for every grid shape and cache mode (pinned by the
    /// `tests/overlap_pipeline.rs` sweep).  Degradations are graceful, never
    /// errors: with the [`FeatureCacheConfig::Lru`] cache (or no cache) the
    /// per-step fetch collectives stay synchronous so ranks stay matched and
    /// only group `k + 1`'s sampling is hoisted; the streaming (local) path
    /// ignores the knob entirely, since its [`MinibatchStream`] worker thread
    /// already overlaps sampling with training.
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Selects the transport the distributed training loop runs over
    /// (default [`TransportSelect::Simulator`]):
    ///
    /// * [`TransportSelect::Simulator`] — ranks are threads of this process,
    ///   payloads cross as boxed values;
    /// * [`TransportSelect::UnixSocket`] — one OS process per rank; the
    ///   session, dataset included, is wire-encoded to each rank process,
    ///   which rebuilds it and runs the identical per-rank loop over real
    ///   Unix-domain-socket collectives.  Requires the sampler and backend to
    ///   be spec-describable ([`Sampler::spec`] /
    ///   [`SamplingBackend::spec`]), and
    ///   has no effect on local (non-distributed) backends.
    ///
    /// The two transports are byte-identical in everything deterministic —
    /// losses, accuracy, words/messages/cache counters — which the
    /// `tests/transport_equivalence.rs` sweep pins.
    pub fn transport(mut self, transport: TransportSelect) -> Self {
        self.transport = transport;
        self
    }

    /// How feature rows travel on the distributed fetch lanes (default
    /// [`Codec::Exact`]):
    ///
    /// * [`Codec::Exact`] — rows ship as little-endian `f64` words,
    ///   byte-identical to training without a codec;
    /// * [`Codec::Fp16`] — rows ship as IEEE-754 half floats, 4× fewer
    ///   payload bytes, relative error ≤ 2⁻¹⁰ per value;
    /// * [`Codec::Int8`] — rows ship as one `i8` per value plus one `f64`
    ///   scale per row, ~8× fewer payload bytes, absolute error ≤
    ///   `row_max/254` per value.
    ///
    /// The codec changes only the *bytes on the wire* — request rounds,
    /// message counts and logical word counts are identical across codecs,
    /// and the per-epoch byte books balance exactly:
    /// `bytes_on_wire(codec) + bytes_saved == bytes_on_wire(exact)`
    /// ([`CommStats::bytes_on_wire`], [`CommStats::bytes_saved`]).  The α–β
    /// modeled β charge follows the real encoded bytes, so compressed runs
    /// model a genuinely smaller communication bill.  Decoded rows are what
    /// the trainer (and the [`SessionBuilder::feature_cache`]) sees, so
    /// cached and uncached runs stay byte-identical under any one codec.
    pub fn wire_codec(mut self, codec: Codec) -> Self {
        self.wire_codec = codec;
        self
    }

    /// Compresses the per-step gradient all-reduce to its `k`
    /// largest-magnitude coordinates with **error feedback** (default off:
    /// dense exact reduce).  Each rank folds its residual into the fresh
    /// gradient, ships only the top-`k` `(index, value)` pairs (ties broken
    /// by lower index), and keeps everything unshipped as residual for the
    /// next step — so no gradient mass is ever dropped, only delayed.  The
    /// sparse lists merge in ascending-rank order at the reduce root and the
    /// union is broadcast, so every rank applies the identical update and
    /// the replicas never diverge.  The step-count reduce stays exact.
    ///
    /// This genuinely shrinks the wire: `2·k` words per rank per step
    /// instead of one word per model parameter.  Unlike
    /// [`SessionBuilder::wire_codec`] it is lossy in *trajectory* (losses
    /// differ from the dense run, within the tolerance the
    /// `tests/backend_equivalence.rs` sweep pins), though both transports
    /// and all cache modes remain byte-identical to each other under it.
    pub fn grad_top_k(mut self, k: usize) -> Self {
        self.grad_top_k = Some(k);
        self
    }

    /// Schedules an edge insert/delete batch to land after epoch
    /// `after_epoch` finishes (0-based).  Every rank applies the batch to
    /// its adjacency under [`GraphIngest`] and invalidates affected cached
    /// feature rows per [`SessionBuilder::invalidation`] before the next
    /// epoch samples.  Events accumulate in call order; several may share an
    /// epoch.  Requires a distributed backend (the ingest path routes by the
    /// 1.5D owner partition).
    pub fn ingest(mut self, after_epoch: usize, batch: DeltaBatch) -> Self {
        self.ingest.push(IngestEvent { after_epoch, batch });
        self
    }

    /// How scheduled ingest batches fold into the adjacency:
    /// [`IngestMode::Delta`] (default) keeps a lazy delta-CSR overlay
    /// compacted on demand; [`IngestMode::Rebuild`] eagerly rebuilds the CSR
    /// from scratch.  Both produce byte-identical matrices — the
    /// `tests/delta_equivalence.rs` sweep pins this.
    pub fn ingest_mode(mut self, mode: IngestMode) -> Self {
        self.ingest_mode = mode;
        self
    }

    /// Cache-invalidation policy applied when an ingest batch lands:
    /// [`InvalidationPolicy::Precise`] (default) evicts only cached rows
    /// whose vertices the batch dirtied; [`InvalidationPolicy::FlushAll`]
    /// drops the whole cache.  Both book their work into the
    /// [`CommStats`] invalidation ledger, whose
    /// double-entry identity the delta-equivalence sweep checks.
    pub fn invalidation(mut self, policy: InvalidationPolicy) -> Self {
        self.invalidation = policy;
        self
    }

    /// Validates the configuration and builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] when a required component is
    /// missing or a numeric parameter is zero, and propagates typed
    /// [`dmbs_sampling::SamplingError`]s from backend validation.
    pub fn build(self) -> Result<TrainingSession<S, B>> {
        let dataset = self
            .dataset
            .ok_or_else(|| GnnError::InvalidConfig("session needs a dataset".into()))?;
        let sampler = self
            .sampler
            .ok_or_else(|| GnnError::InvalidConfig("session needs a sampler".into()))?;
        let backend = self
            .backend
            .ok_or_else(|| GnnError::InvalidConfig("session needs a backend".into()))?;
        // An explicit session-level parallelism overrides the backend's own;
        // otherwise the backend keeps whatever it was configured with.
        let backend = match self.parallelism {
            Some(parallelism) => backend.with_parallelism(parallelism),
            None => backend,
        };
        // Likewise for workspace reuse: an explicit session-level setting
        // overrides the backend's.
        let backend = match self.workspace_reuse {
            Some(reuse) => backend.with_workspace_reuse(reuse),
            None => backend,
        };
        let parallelism = backend.parallelism();
        let batch_size = self.batch_size.unwrap_or(backend.bulk().batch_size);
        let bulk_size = self.bulk_size.unwrap_or(backend.bulk().bulk_size);
        if batch_size == 0 || bulk_size == 0 {
            return Err(GnnError::InvalidConfig("batch_size and bulk k must be positive".into()));
        }
        if bulk_size > backend.bulk().bulk_size {
            return Err(GnnError::InvalidConfig(format!(
                "session bulk k = {bulk_size} exceeds the backend's bulk_size = {}; size the \
                 backend's BulkSamplerConfig instead so every session group is one backend group",
                backend.bulk().bulk_size
            )));
        }
        if self.hidden_dim == 0 || self.epochs == 0 {
            return Err(GnnError::InvalidConfig("hidden_dim and epochs must be positive".into()));
        }
        if self.grad_top_k == Some(0) {
            return Err(GnnError::InvalidConfig("grad_top_k must be positive".into()));
        }
        if let Some(dist) = backend.dist() {
            dist.validate().map_err(GnnError::Sampling)?;
        }
        if dataset.train_set.is_empty() {
            return Err(GnnError::InvalidConfig("dataset has an empty training set".into()));
        }
        if !self.ingest.is_empty() {
            if backend.dist().is_none() {
                return Err(GnnError::InvalidConfig(
                    "graph ingest requires a distributed backend (the ingest path routes \
                     batches by the 1.5D owner partition)"
                        .into(),
                ));
            }
            let n = dataset.graph.num_vertices();
            for event in &self.ingest {
                if event.after_epoch + 1 >= self.epochs {
                    return Err(GnnError::InvalidConfig(format!(
                        "ingest scheduled after epoch {} but the session trains only {} \
                         epoch(s); at least one epoch must follow every ingest",
                        event.after_epoch, self.epochs
                    )));
                }
                for (row, col, _) in event.batch.ops() {
                    if row >= n || col >= n {
                        return Err(GnnError::InvalidConfig(format!(
                            "ingest edge ({row}, {col}) outside the {n}-vertex graph"
                        )));
                    }
                }
            }
        }
        Ok(TrainingSession {
            dataset,
            sampler: Arc::new(sampler),
            backend: Arc::new(backend),
            config: SessionConfig {
                batch_size,
                bulk_size,
                hidden_dim: self.hidden_dim,
                learning_rate: self.learning_rate,
                epochs: self.epochs,
                seed: self.seed,
                replicate_features: self.replicate_features,
                feature_replication: self.feature_replication,
                evaluate: self.evaluate,
                parallelism,
                feature_cache: self.feature_cache,
                overlap: self.overlap,
                transport: self.transport,
                wire_codec: self.wire_codec,
                grad_top_k: self.grad_top_k,
                ingest: self.ingest,
                ingest_mode: self.ingest_mode,
                invalidation: self.invalidation,
            },
            tuning: None,
        })
    }
}

impl<S, B> SessionBuilder<S, B>
where
    S: Sampler + Send + Sync + 'static,
    B: SamplingBackend + Send + Sync + 'static,
{
    /// Builds the session, then **auto-tunes** its schedule knobs with the
    /// cost-model-driven tuner ([`dmbs_comm::tune`]): a few cheap one-epoch
    /// probes book the workload's words, bytes and per-phase compute, a
    /// [`TuningModel`] is fitted from them, the valid knob grid at the
    /// backend's `(p, c)` shape is searched, and the arg-min schedule —
    /// feature-cache mode, wire codec, overlapped pipeline — is applied to
    /// the returned session.  [`TrainingSession::tuning_outcome`] exposes
    /// every scored candidate with its predicted cost breakdown.
    ///
    /// Tuning is conservative by construction:
    ///
    /// * **local backends are returned untouched** — there is no
    ///   communication to tune;
    /// * **lossy codecs are opt-in** — the grid admits `Fp16`/`Int8` only
    ///   when the builder explicitly set a lossy [`SessionBuilder::wire_codec`]
    ///   (and then two extra probes calibrate their real byte savings);
    ///   likewise an [`FeatureCacheConfig::Lru`] setting admits LRU
    ///   candidates with that byte budget;
    /// * **ties keep the default** — a workload the knobs cannot improve
    ///   (e.g. a fully-replicated shape with nothing on the wire) trains
    ///   with the same configuration [`SessionBuilder::build`] would have
    ///   produced, by the deterministic lexicographic tie-break.
    ///
    /// Probes always run over the in-process simulator transport (both
    /// transports are bit-identical in every counter the model reads); the
    /// returned session still trains over whatever
    /// [`SessionBuilder::transport`] selected.  Because probes share the
    /// session's seed and the tuned knobs never change what is sampled or
    /// trained (cache/overlap are byte-identical schedules; the codec is
    /// bit-exact unless lossy was opted into), training the auto-tuned
    /// session is bit-identical to explicitly passing the chosen knobs to a
    /// fresh builder — `tests/autotune_pipeline.rs` pins this.
    ///
    /// ```
    /// use dmbs_comm::{CostModel, Runtime};
    /// use dmbs_gnn::session::TrainingSession;
    /// use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    /// use dmbs_sampling::{BulkSamplerConfig, DistConfig, GraphSageSampler, ReplicatedBackend};
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut cfg = DatasetConfig::products_like(7);
    /// cfg.feature_dim = 8;
    /// cfg.num_classes = 4;
    /// cfg.train_fraction = 0.5;
    /// let dataset = build_dataset(&cfg, &mut StdRng::seed_from_u64(1))?;
    ///
    /// // A comm-dominant cost model makes the schedule knobs load-bearing.
    /// let runtime = Runtime::with_cost_model(4, CostModel::new(2.0e-4, 5.0e-8))?;
    /// let dist = DistConfig::new(4, 2, BulkSamplerConfig::new(16, 2));
    /// let session = TrainingSession::builder()
    ///     .dataset(dataset)
    ///     .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
    ///     .backend(ReplicatedBackend::with_runtime(runtime, dist)?)
    ///     .hidden_dim(8)
    ///     .epochs(1)
    ///     .without_evaluation()
    ///     .auto()?;
    ///
    /// let outcome = session.tuning_outcome().expect("distributed sessions are tuned");
    /// // The arg-min is never worse than the default schedule (candidate 0).
    /// assert!(outcome.chosen().cost.total_s() <= outcome.scored[0].cost.total_s());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Everything [`SessionBuilder::build`] rejects, plus probe training
    /// failures and [`GnnError::Comm`] when the tuner's books do not balance
    /// (which would mean a double-entry accounting bug — see
    /// [`TuningModel::fit`]).
    pub fn auto(self) -> Result<TrainingSession<S, B>> {
        // Lossy codecs and the byte-budgeted LRU cache are strictly opt-in:
        // only an explicit builder setting admits them to the searched grid.
        let allow_lossy = self.wire_codec != Codec::Exact;
        let lru_budget = match self.feature_cache {
            FeatureCacheConfig::Lru { byte_budget } => Some(byte_budget),
            _ => None,
        };
        let mut session = self.build()?;
        let (p, cost, c) = match (session.backend.runtime(), session.backend.dist()) {
            (Some(runtime), Some(dist)) => (
                runtime.size(),
                runtime.cost_model(),
                session.config.feature_replication.unwrap_or(dist.replication_c).max(1),
            ),
            // Local backends have no communication to tune; the built
            // session is already the arg-min.
            _ => return Ok(session),
        };
        let mut grid = TuningGrid::new(p, c)?;
        if let Some(byte_budget) = lru_budget {
            grid = grid.with_lru_budget(byte_budget);
        }
        grid = grid.with_lossy(allow_lossy);

        let probe =
            |cache: FeatureCacheConfig, codec: Codec, overlap: bool| -> Result<ProbeEpoch> {
                let probe_session = TrainingSession {
                    dataset: Arc::clone(&session.dataset),
                    sampler: Arc::clone(&session.sampler),
                    backend: Arc::clone(&session.backend),
                    config: SessionConfig {
                        epochs: 1,
                        evaluate: false,
                        feature_cache: cache,
                        wire_codec: codec,
                        overlap,
                        // Probes always run in-process: both transports are
                        // bit-identical in every counter the model reads, and
                        // the simulator avoids spawning rank processes per
                        // probe.  Ingest is dropped — it lands after later
                        // epochs a one-epoch probe never reaches.
                        transport: TransportSelect::Simulator,
                        ingest: Vec::new(),
                        ..session.config.clone()
                    },
                    tuning: None,
                };
                let report = probe_session.train()?;
                let epoch = report.epochs.first().ok_or_else(|| {
                    GnnError::InvalidConfig("probe epoch produced no statistics".into())
                })?;
                Ok(ProbeEpoch::from_books(&epoch.profile, &epoch.comm))
            };

        // Probes share the session seed, so every probe sees the identical
        // epoch-0 schedule and the cross-probe double-entry identities that
        // TuningModel::fit verifies hold exactly.
        let probes = ProbeSet {
            baseline: probe(FeatureCacheConfig::Off, Codec::Exact, false)?,
            pinned: probe(FeatureCacheConfig::EpochPinned, Codec::Exact, false)?,
            fp16: if allow_lossy {
                Some(probe(FeatureCacheConfig::EpochPinned, Codec::Fp16, false)?)
            } else {
                None
            },
            int8: if allow_lossy {
                Some(probe(FeatureCacheConfig::EpochPinned, Codec::Int8, false)?)
            } else {
                None
            },
            overlapped: if c > 1 {
                Some(probe(FeatureCacheConfig::EpochPinned, Codec::Exact, true)?)
            } else {
                None
            },
        };
        let model = TuningModel::fit(cost, p, probes)?;
        let outcome = tune::search(&model, &grid);
        let chosen = outcome.chosen().choice;
        session.config.feature_cache = match chosen.cache {
            CacheKnob::Off => FeatureCacheConfig::Off,
            CacheKnob::EpochPinned => FeatureCacheConfig::EpochPinned,
            CacheKnob::Lru { byte_budget } => FeatureCacheConfig::Lru { byte_budget },
        };
        session.config.wire_codec = chosen.codec;
        session.config.overlap = chosen.overlap;
        session.tuning = Some(outcome);
        Ok(session)
    }
}

/// A configured end-to-end training pipeline: dataset × sampler × backend.
///
/// Construct with [`TrainingSession::builder`]; see the module docs.
#[derive(Debug, Clone)]
pub struct TrainingSession<S, B> {
    dataset: Arc<Dataset>,
    sampler: Arc<S>,
    backend: Arc<B>,
    config: SessionConfig,
    /// The auto-tuner's scored grid, present only on sessions built with
    /// [`SessionBuilder::auto`].  Not shipped to rank processes — the chosen
    /// knobs already live in `config`.
    tuning: Option<TuningOutcome>,
}

impl<S: Sampler, B: SamplingBackend> TrainingSession<S, B> {
    /// Starts a fluent builder.
    pub fn builder() -> SessionBuilder<S, B> {
        SessionBuilder::default()
    }

    /// Rebuilds a session from already-validated parts — the
    /// [`crate::worker`] entry point, where a rank process reconstructs the
    /// exact session the parent encoded (builder re-validation would be
    /// redundant and could mask codec bugs by re-deriving defaults).
    pub(crate) fn from_parts(
        dataset: Arc<Dataset>,
        sampler: S,
        backend: B,
        config: SessionConfig,
    ) -> Self {
        TrainingSession {
            dataset,
            sampler: Arc::new(sampler),
            backend: Arc::new(backend),
            config,
            tuning: None,
        }
    }

    /// The dataset this session trains on.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The sampling algorithm.
    pub fn sampler(&self) -> &S {
        &self.sampler
    }

    /// The distribution strategy.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The resolved session hyper-parameters (for the [`crate::worker`]
    /// codec).
    pub(crate) fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The auto-tuner's scored grid and applied arg-min choice, when this
    /// session was built with [`SessionBuilder::auto`]; `None` for sessions
    /// built with [`SessionBuilder::build`] (including sessions rebuilt
    /// inside a socket-transport rank process, whose knobs were already
    /// tuned by the parent).
    pub fn tuning_outcome(&self) -> Option<&TuningOutcome> {
        self.tuning.as_ref()
    }

    /// The epoch's shuffled minibatch plan (deterministic in the session
    /// seed, identical on every rank).
    fn plan(&self, epoch: usize) -> Result<MinibatchPlan> {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1 + epoch as u64));
        Ok(MinibatchPlan::new(&self.dataset.train_set, self.config.batch_size, &mut rng)?)
    }

    /// The sampling seed of an epoch (bulk groups derive theirs with
    /// [`group_seed`]).
    fn epoch_sample_seed(&self, epoch: usize) -> u64 {
        self.config.seed.wrapping_add((epoch as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03))
    }
}

impl<S, B> TrainingSession<S, B>
where
    S: Sampler + Send + Sync + 'static,
    B: SamplingBackend + Send + Sync + 'static,
{
    /// Samples one epoch eagerly (no prefetch), in plan order.  The stream
    /// yields exactly these minibatches; see the equivalence tests.
    ///
    /// # Errors
    ///
    /// Propagates plan and sampling errors.
    pub fn sample_epoch_eager(&self, epoch: usize) -> Result<BulkSampleOutput> {
        let plan = self.plan(epoch)?;
        let mut merged = BulkSampleOutput::default();
        let seed = self.epoch_sample_seed(epoch);
        for (gi, group) in plan.batches().chunks(self.config.bulk_size).enumerate() {
            let epoch_samples = self
                .backend
                .sample_epoch(
                    &*self.sampler,
                    self.dataset.graph.adjacency(),
                    group,
                    group_seed(seed, gi),
                )
                .map_err(GnnError::Sampling)?;
            merged.merge(epoch_samples.output);
        }
        Ok(merged)
    }

    /// Opens a double-buffered [`MinibatchStream`] over `epoch`: a worker
    /// thread samples bulk group `g + 1` through the backend while the
    /// caller consumes group `g` (§6 pipelining).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if the plan cannot be built;
    /// sampling errors surface through the iterator's items.
    pub fn stream(&self, epoch: usize) -> Result<MinibatchStream> {
        let plan = self.plan(epoch)?;
        let batches: Vec<Vec<usize>> = plan.batches().to_vec();
        let bulk_size = self.config.bulk_size;
        let seed = self.epoch_sample_seed(epoch);
        let dataset = Arc::clone(&self.dataset);
        let sampler = Arc::clone(&self.sampler);
        let backend = Arc::clone(&self.backend);

        // Capacity 1 : one finished group buffered while the next one
        // samples — double buffering, bounded memory.
        let (tx, rx) = mpsc::sync_channel::<GroupMessage>(1);
        let worker = std::thread::spawn(move || {
            let mut base_index = 0;
            for (gi, group) in batches.chunks(bulk_size).enumerate() {
                let result = backend
                    .sample_epoch(&*sampler, dataset.graph.adjacency(), group, group_seed(seed, gi))
                    .map(|epoch_samples| {
                        // Plan the group's feature fetch here, on the worker:
                        // deduplicating the frontier union overlaps the
                        // consumer's compute on the previous group.
                        let plan = epoch_samples.fetch_plan();
                        (gi, base_index, epoch_samples.output, plan)
                    })
                    .map_err(GnnError::Sampling);
                let failed = result.is_err();
                if tx.send(result).is_err() || failed {
                    return;
                }
                base_index += group.len();
            }
        });

        Ok(MinibatchStream {
            epoch,
            rx: Some(rx),
            pending: VecDeque::new(),
            profile: PhaseProfile::new(),
            comm: CommStats::default(),
            plans: Vec::new(),
            worker: Some(worker),
            failed: false,
        })
    }

    /// Runs the full training loop and returns per-epoch statistics (and
    /// test accuracy unless disabled).
    ///
    /// With a local backend the loop consumes a [`MinibatchStream`], so bulk
    /// sampling overlaps training.  With a distributed backend it runs the
    /// bulk-synchronous pipeline of Figure 3: backend sampling inside the
    /// SPMD region, 1.5D-partitioned feature fetching, propagation, and a
    /// data-parallel gradient all-reduce.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (missing features/labels), sampling
    /// errors and collective failures.
    pub fn train(&self) -> Result<TrainingReport> {
        self.train_model().map(|(report, _)| report)
    }

    /// Runs the full training loop and exports the trained model as a
    /// [`ModelSnapshot`] for the serving tier, alongside the usual report.
    /// The snapshot carries the dataset shape it was trained against, so
    /// [`crate::serve::ServingSession::new`] can reject a mismatched graph
    /// with a typed error instead of a garbage forward pass.
    ///
    /// # Errors
    ///
    /// Exactly those of [`TrainingSession::train`].
    pub fn train_and_export(&self) -> Result<(TrainingReport, ModelSnapshot)> {
        let (report, model) = self.train_model()?;
        let num_vertices = self.dataset.graph.adjacency().rows();
        Ok((report, ModelSnapshot::new(model, num_vertices)?))
    }

    fn train_model(&self) -> Result<(TrainingReport, SageModel)> {
        let (feature_dim, num_classes) = self.dataset_dims()?;
        if self.backend.runtime().is_some() {
            self.train_distributed(feature_dim, num_classes)
        } else {
            self.train_streaming(feature_dim, num_classes)
        }
    }

    fn dataset_dims(&self) -> Result<(usize, usize)> {
        let features = self
            .dataset
            .graph
            .features()
            .ok_or_else(|| GnnError::InvalidConfig("dataset has no feature matrix".into()))?;
        if self.dataset.graph.labels().is_none() {
            return Err(GnnError::InvalidConfig("dataset has no labels".into()));
        }
        Ok((features.cols(), self.dataset.graph.num_classes()))
    }

    fn batch_labels(&self, batch: &[usize]) -> Vec<usize> {
        let labels = self.dataset.graph.labels().expect("validated");
        batch.iter().map(|&v| labels[v]).collect()
    }

    /// Single-device training over the prefetching stream.
    fn train_streaming(
        &self,
        feature_dim: usize,
        num_classes: usize,
    ) -> Result<(TrainingReport, SageModel)> {
        let features = self.dataset.graph.features().expect("validated");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut model = SageModel::new(
            feature_dim,
            self.config.hidden_dim,
            num_classes,
            self.sampler.num_layers(),
            &mut rng,
        )?
        .with_parallelism(self.config.parallelism);
        let mut optimizer = Sgd::new(self.config.learning_rate);

        // The per-rank feature cache of the §6.2 pipeline; for the local
        // path nothing crosses a wire, so the cache is pure copy avoidance
        // (plus the hit-rate bookkeeping the harnesses report).
        let mut cache = self
            .config
            .feature_cache
            .is_enabled()
            .then(|| FeatureCache::new(self.config.feature_cache, feature_dim));
        let pinned = matches!(self.config.feature_cache, FeatureCacheConfig::EpochPinned);

        let mut report = TrainingReport::default();
        for epoch in 0..self.config.epochs {
            let mut stream = self.stream(epoch)?;
            let mut profile = PhaseProfile::new();
            let mut loss = RunningMean::new();
            if pinned {
                // Epoch-static pinning: resident rows live for one epoch.
                cache.as_mut().expect("pinned implies enabled").clear();
            }
            let mut primed_group = None;
            while let Some(minibatch) = stream.next() {
                let minibatch = minibatch?;
                let sample = &minibatch.sample;
                let input = if let Some(cache) = cache.as_mut() {
                    // Prime the group's deduplicated frontier union once; the
                    // plan itself was computed on the sampling worker thread,
                    // overlapping the previous group's compute.
                    if pinned && primed_group != Some(minibatch.group) {
                        primed_group = Some(minibatch.group);
                        if let Some(plan) = stream.group_plan(minibatch.group) {
                            let union = plan.unique_vertices().to_vec();
                            profile.time_compute(Phase::FeatureFetch, || {
                                cache.prime_local(features, &union)
                            })?;
                        }
                    }
                    profile.time_compute(Phase::FeatureFetch, || {
                        cache.gather_local(features, sample.input_vertices())
                    })?
                } else {
                    profile.time_compute(Phase::FeatureFetch, || {
                        features.gather_rows(sample.input_vertices())
                    })?
                };
                let labels = self.batch_labels(&sample.batch);
                let step_loss = profile.time_compute(Phase::Propagation, || -> Result<f64> {
                    let (l, _, grads) = model.loss_and_gradients(sample, &input, &labels)?;
                    optimizer.step(model.parameters_mut(), &grads)?;
                    Ok(l)
                })?;
                loss.push(step_loss);
            }
            profile.merge_sum(stream.sampling_profile());
            let mut comm = *stream.comm_stats();
            if let Some(cache) = cache.as_mut() {
                comm.merge(&cache.take_stats());
            }
            report.epochs.push(EpochStats { epoch, profile, comm, mean_loss: loss.mean() });
        }

        if self.config.evaluate {
            report.test_accuracy = Some(self.evaluate_model(&model, &self.dataset.test_set)?);
        }
        Ok((report, model))
    }

    /// The per-rank body of the distributed training loop — everything one
    /// rank does inside the SPMD region, from feature-store partitioning to
    /// the per-epoch profile/loss bookkeeping.  Shared verbatim by both
    /// transports: [`TrainingSession::train_distributed`] calls it from a
    /// simulator closure, and the [`crate::worker`] train worker calls it in
    /// a rank *process* whose communicator runs over Unix sockets.  Every
    /// input is recomputed deterministically from the session (plans, grid,
    /// seeds), so the two call sites are byte-identical by construction.
    pub(crate) fn distributed_rank_main(&self, comm: &mut Communicator) -> Result<RankEpochs> {
        let dist = self.backend.dist().ok_or_else(|| {
            GnnError::InvalidConfig("distributed backend without DistConfig".into())
        })?;
        let (feature_dim, num_classes) = self.dataset_dims()?;
        let features = self.dataset.graph.features().expect("validated");
        let p = comm.size();
        let config = &self.config;
        let replication = config.feature_replication.unwrap_or(dist.replication_c).max(1);
        let grid = ProcessGrid::new(p, replication)?;

        // Per-epoch plans are identical on every rank.
        let mut plans = Vec::with_capacity(config.epochs);
        for epoch in 0..config.epochs {
            plans.push(self.plan(epoch)?);
        }

        let rank = comm.rank();
        // The wire codec rides on the store: reply rows of every fetch
        // lane (uncached, LRU read-through, pinned prefetch) encode the
        // same way, so cache modes stay byte-identical under any codec.
        let (store, fetch_group) = if config.replicate_features {
            let (my_row, _) = grid.coords(rank);
            let store = FeatureStore::from_full(features, grid.rows(), my_row)?
                .with_codec(config.wire_codec);
            let group = Group::new(&grid.col_ranks(rank))?;
            (store, group)
        } else {
            let store = FeatureStore::from_full(features, p, rank)?.with_codec(config.wire_codec);
            (store, comm.world())
        };

        let mut init_rng = StdRng::seed_from_u64(config.seed);
        let mut model = SageModel::new(
            feature_dim,
            config.hidden_dim,
            num_classes,
            self.sampler.num_layers(),
            &mut init_rng,
        )?
        .with_parallelism(config.parallelism);
        let mut optimizer = Sgd::new(config.learning_rate);
        // Error-feedback residual of the top-k gradient compressor: the
        // gradient mass this rank has not yet shipped.  Lives for the whole
        // run so nothing is dropped at epoch boundaries, only delayed.
        let mut grad_residual = config.grad_top_k.map(|_| vec![0.0; model.num_parameters()]);
        // The communication-avoiding feature cache (§6.2).  Every
        // rank makes the same mode decision, so the collective
        // schedule stays matched: pinned mode replaces the per-step
        // all-to-allv with one prefetch round per bulk group, LRU
        // mode keeps the per-step round but ships only misses.
        let pinned = matches!(config.feature_cache, FeatureCacheConfig::EpochPinned);
        let mut cache = config
            .feature_cache
            .is_enabled()
            .then(|| FeatureCache::new(config.feature_cache, store.feature_dim()));

        // Dynamic-graph state: every rank folds scheduled ingest batches
        // into its own replica of the adjacency.  Static sessions pay one
        // clone and the overlay stays empty forever.
        let mut ingest = GraphIngest::new(self.dataset.graph.adjacency().clone())
            .map_err(GnnError::Graph)?
            .with_mode(config.ingest_mode);

        let mut epochs = Vec::with_capacity(config.epochs);
        for (epoch, plan) in plans.iter().enumerate() {
            let mut profile = PhaseProfile::new();
            let mut loss = RunningMean::new();
            let comm_start = comm.stats();
            let epoch_seed = self.epoch_sample_seed(epoch);
            // Compact any batch landed after the previous epoch so this
            // epoch samples the post-ingest graph.  The version is captured
            // before the borrow so fetch plans can be stamped while the
            // adjacency reference is live.
            let graph_version = ingest.version();
            let adjacency = ingest.adjacency();
            if pinned {
                // Epoch-static pinning: resident rows live for one
                // epoch, so a remote row crosses at most once per
                // epoch even when bulk groups share frontiers.
                cache.as_mut().expect("pinned implies enabled").clear();
            }

            let groups: Vec<&[Vec<usize>]> = plan.batches().chunks(config.bulk_size).collect();
            if config.overlap {
                // --- Software-pipelined schedule (§6 overlap): while
                // group k trains, group k+1 is sampled and its pinned
                // prefetch is posted nonblocking; stage 0 fills the
                // pipeline with no compute to hide behind.
                let mut stage = self.sample_and_post_stage(
                    comm,
                    adjacency,
                    graph_version,
                    groups[0],
                    group_seed(epoch_seed, 0),
                    &store,
                    &fetch_group,
                    &mut cache,
                    pinned,
                    &mut profile,
                )?;
                let mut prev_steps_compute = 0.0f64;
                for k in 0..groups.len() {
                    let next = if k + 1 < groups.len() {
                        Some(self.sample_and_post_stage(
                            comm,
                            adjacency,
                            graph_version,
                            groups[k + 1],
                            group_seed(epoch_seed, k + 1),
                            &store,
                            &fetch_group,
                            &mut cache,
                            pinned,
                            &mut profile,
                        )?)
                    } else {
                        None
                    };
                    // Complete stage k's prefetch (the reply rows of
                    // the posted all-to-allv land here).
                    if let Some(pending) = stage.pending.take() {
                        let cache = cache.as_mut().expect("pending implies pinned cache");
                        let wait_start = std::time::Instant::now();
                        let comm_before = comm.stats().modeled_time;
                        cache.complete_prefetch(&store, comm, &fetch_group, pending)?;
                        profile
                            .add_compute(Phase::FeatureFetch, wait_start.elapsed().as_secs_f64());
                        let wait_comm = comm.stats().modeled_time - comm_before;
                        profile.add_comm(Phase::FeatureFetch, wait_comm);
                        stage.hoisted.add_comm(Phase::FeatureFetch, wait_comm);
                    }
                    // Charge the hoisted communication as hidden
                    // behind the previous group's training compute:
                    // the pipelined schedule pays max(comm, compute),
                    // so min(comm, compute) is credited as overlapped
                    // seconds — phase by phase until the budget runs
                    // out.  The wire books (words, messages, modeled
                    // time) are untouched.
                    let mut budget = prev_steps_compute;
                    for phase in Phase::ALL {
                        let credit =
                            comm.cost_model().overlap_credit(stage.hoisted.comm(phase), budget);
                        if credit > 0.0 {
                            profile.add_overlap(phase, credit);
                            budget -= credit;
                        }
                    }
                    prev_steps_compute = self.run_group_steps(
                        comm,
                        &stage.samples,
                        &store,
                        &fetch_group,
                        &mut cache,
                        pinned,
                        true,
                        &mut model,
                        &mut optimizer,
                        &mut grad_residual,
                        &mut profile,
                        &mut loss,
                    )?;
                    if let Some(next) = next {
                        stage = next;
                    }
                }
            } else {
                for (gi, group) in groups.iter().enumerate() {
                    // --- Phase 1: sampling through the backend,
                    // inside the SPMD region.
                    let shard = self
                        .backend
                        .sample_group_on_rank(
                            comm,
                            &*self.sampler,
                            adjacency,
                            group,
                            group_seed(epoch_seed, gi),
                        )
                        .map_err(GnnError::Sampling)?;
                    profile.merge_sum(&shard.profile);
                    let my_samples = shard.samples;

                    // --- Phase 2a (pinned cache only): one
                    // collective prefetch of the group's deduplicated
                    // frontier union.  Bulk sampling materialized
                    // every frontier already, so the fetch plan costs
                    // a dedup, and the per-step all-to-allv rounds
                    // below disappear.
                    if pinned {
                        let cache = cache.as_mut().expect("pinned implies enabled");
                        let fetch_plan =
                            FetchPlan::from_sample_iter(my_samples.iter().map(|(_, mb)| mb))
                                .with_version(graph_version);
                        // Load-bearing guard: a plan computed before an
                        // ingest must never feed a prefetch afterwards.
                        ensure_plan_fresh(&fetch_plan, graph_version)?;
                        let fetch_start = std::time::Instant::now();
                        let comm_before = comm.stats().modeled_time;
                        cache.prefetch(&store, comm, &fetch_group, fetch_plan.unique_vertices())?;
                        profile
                            .add_compute(Phase::FeatureFetch, fetch_start.elapsed().as_secs_f64());
                        profile
                            .add_comm(Phase::FeatureFetch, comm.stats().modeled_time - comm_before);
                    }

                    self.run_group_steps(
                        comm,
                        &my_samples,
                        &store,
                        &fetch_group,
                        &mut cache,
                        pinned,
                        false,
                        &mut model,
                        &mut optimizer,
                        &mut grad_residual,
                        &mut profile,
                        &mut loss,
                    )?;
                }
            }

            let mut comm_delta = comm.stats();
            comm_delta.messages -= comm_start.messages;
            comm_delta.words_sent -= comm_start.words_sent;
            comm_delta.bytes_on_wire -= comm_start.bytes_on_wire;
            comm_delta.bytes_saved -= comm_start.bytes_saved;
            comm_delta.modeled_time -= comm_start.modeled_time;
            comm_delta.overlapped_time -= comm_start.overlapped_time;
            // The hidden seconds live in the profile's overlap books;
            // mirror the epoch total into the comm counters so the
            // harnesses see one number per epoch.
            comm_delta.record_overlap(profile.total_overlap());
            if let Some(cache) = cache.as_mut() {
                // Fold in this epoch's hit/miss/saved-words counters
                // (and reset them for the next epoch).
                comm_delta.merge(&cache.take_stats());
            }
            epochs.push((profile, comm_delta, loss.mean()));

            // --- Dynamic graphs: land every batch scheduled after this
            // epoch.  The adjacency is replicated, so each rank applies the
            // full batch; the owner routing is still computed (and its
            // sub-batches checked to repartition the batch exactly) because
            // that is the lane a sharded adjacency would ship updates over.
            // The invalidation work books into the cache stats, i.e. into
            // the NEXT epoch's comm delta — an ingest between epochs is
            // charged to the epoch that pays its refetches.
            for event in config.ingest.iter().filter(|e| e.after_epoch == epoch) {
                let routed = GraphIngest::route_by_owner(&event.batch, store.partition())
                    .map_err(GnnError::Graph)?;
                debug_assert_eq!(
                    routed.iter().map(DeltaBatch::len).sum::<usize>(),
                    event.batch.len(),
                    "owner routing must partition the batch exactly"
                );
                let receipt = ingest.apply(&event.batch).map_err(GnnError::Graph)?;
                if let Some(cache) = cache.as_mut() {
                    match config.invalidation {
                        InvalidationPolicy::Precise => {
                            cache.invalidate(&store, &receipt.dirty);
                        }
                        InvalidationPolicy::FlushAll => {
                            cache.invalidate_all(&store);
                        }
                    }
                }
            }
        }
        let params = model.parameters().to_vec();
        Ok((epochs, params))
    }

    /// Bulk-synchronous data-parallel training (Figure 3) for distributed
    /// backends.  The per-rank loop is [`TrainingSession::distributed_rank_main`];
    /// this method dispatches it over the configured transport (simulator
    /// threads, or one process per rank via the [`crate::worker`] registry)
    /// and aggregates the per-rank results.
    fn train_distributed(
        &self,
        feature_dim: usize,
        num_classes: usize,
    ) -> Result<(TrainingReport, SageModel)> {
        let runtime = self.backend.runtime().expect("distributed path");
        let config = &self.config;

        let per_rank_ok: Vec<RankEpochs> = match &config.transport {
            TransportSelect::Simulator => {
                let per_rank = runtime.run(|comm| self.distributed_rank_main(comm))?;
                let mut ok = Vec::with_capacity(per_rank.len());
                for o in per_rank {
                    ok.push(o.value?);
                }
                ok
            }
            TransportSelect::UnixSocket(launch) => {
                let runtime =
                    runtime.clone().with_transport(TransportSelect::UnixSocket(launch.clone()));
                let job = crate::worker::encode_train_job(self)?;
                let outputs = runtime.run_worker(
                    &crate::worker::registry(),
                    crate::worker::TRAIN_WORKER,
                    &job,
                )?;
                let mut ok = Vec::with_capacity(outputs.len());
                for o in outputs {
                    ok.push(crate::worker::decode_rank_epochs(&o.value)?);
                }
                ok
            }
        };

        // Aggregate across ranks: max for times, sum for volumes, mean of the
        // per-rank mean losses.
        let mut report = TrainingReport::default();
        for epoch in 0..config.epochs {
            let mut profile = PhaseProfile::new();
            let mut comm = CommStats::default();
            let mut loss = RunningMean::new();
            for (rank_epochs, _) in &per_rank_ok {
                let (p_, c_, l_) = &rank_epochs[epoch];
                profile.merge_max(p_);
                comm.merge(c_);
                if *l_ > 0.0 {
                    loss.push(*l_);
                }
            }
            report.epochs.push(EpochStats { epoch, profile, comm, mean_loss: loss.mean() });
        }

        // All ranks hold identical models (same init, all-reduced
        // gradients); rebuild rank 0's for evaluation and export.
        let mut eval_rng = StdRng::seed_from_u64(config.seed);
        let mut model = SageModel::new(
            feature_dim,
            config.hidden_dim,
            num_classes,
            self.sampler.num_layers(),
            &mut eval_rng,
        )?
        .with_parallelism(config.parallelism);
        let trained = &per_rank_ok[0].1;
        for (param, value) in model.parameters_mut().iter_mut().zip(trained) {
            *param = value.clone();
        }
        if self.config.evaluate {
            report.test_accuracy = Some(self.evaluate_model(&model, &self.dataset.test_set)?);
        }
        Ok((report, model))
    }

    /// Samples one bulk group inside the SPMD region and, with the pinned
    /// cache, posts its prefetch nonblocking — the "stage fill" of the
    /// software pipeline.  The modeled communication this hoists ahead of the
    /// previous group's training is collected in
    /// [`PipelineStage::hoisted`] so the trainer can credit it as
    /// overlapped once the budget (the previous group's training compute) is
    /// known.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn sample_and_post_stage(
        &self,
        comm: &mut Communicator,
        adjacency: &CsrMatrix,
        graph_version: u64,
        group: &[Vec<usize>],
        seed: u64,
        store: &FeatureStore,
        fetch_group: &Group,
        cache: &mut Option<FeatureCache>,
        pinned: bool,
        profile: &mut PhaseProfile,
    ) -> Result<PipelineStage> {
        let shard = self
            .backend
            .sample_group_on_rank(comm, &*self.sampler, adjacency, group, seed)
            .map_err(GnnError::Sampling)?;
        profile.merge_sum(&shard.profile);
        let mut hoisted = PhaseProfile::new();
        for phase in Phase::ALL {
            let comm_secs = shard.profile.comm(phase);
            if comm_secs > 0.0 {
                hoisted.add_comm(phase, comm_secs);
            }
        }
        let pending = if pinned {
            let cache = cache.as_mut().expect("pinned implies enabled");
            let fetch_plan = FetchPlan::from_sample_iter(shard.samples.iter().map(|(_, mb)| mb))
                .with_version(graph_version);
            ensure_plan_fresh(&fetch_plan, graph_version)?;
            let post_start = std::time::Instant::now();
            let comm_before = comm.stats().modeled_time;
            let pending =
                cache.post_prefetch(store, comm, fetch_group, fetch_plan.unique_vertices())?;
            profile.add_compute(Phase::FeatureFetch, post_start.elapsed().as_secs_f64());
            let post_comm = comm.stats().modeled_time - comm_before;
            profile.add_comm(Phase::FeatureFetch, post_comm);
            hoisted.add_comm(Phase::FeatureFetch, post_comm);
            Some(pending)
        } else {
            None
        };
        Ok(PipelineStage { samples: shard.samples, pending, hoisted })
    }

    /// Runs the bulk-synchronous training steps of one group: every rank
    /// takes the same number of steps so the collectives stay matched.  With
    /// `overlap` the per-step gradient reduces are posted back-to-back (two
    /// collectives in flight, identical traffic and bit-identical results);
    /// the per-step *fetch* collectives of the LRU / uncached modes always
    /// stay synchronous — they are demand-driven, and keeping them blocking
    /// is what keeps ranks matched.  Returns the measured wall seconds of the
    /// step loop — the compute budget the next stage's hoisted communication
    /// can hide behind.
    #[allow(clippy::too_many_arguments)]
    fn run_group_steps(
        &self,
        comm: &mut Communicator,
        my_samples: &[(usize, MinibatchSample)],
        store: &FeatureStore,
        fetch_group: &Group,
        cache: &mut Option<FeatureCache>,
        pinned: bool,
        overlap: bool,
        model: &mut SageModel,
        optimizer: &mut Sgd,
        grad_residual: &mut Option<Vec<f64>>,
        profile: &mut PhaseProfile,
        loss: &mut RunningMean,
    ) -> Result<f64> {
        let loop_start = std::time::Instant::now();
        let steps = comm.allreduce(my_samples.len(), |a, b| *a.max(b))?;
        for step in 0..steps {
            let sample = my_samples.get(step).map(|(_, mb)| mb);

            let fetch_start = std::time::Instant::now();
            let comm_before = comm.stats().modeled_time;
            let wanted: Vec<usize> =
                sample.map(|s| s.input_vertices().to_vec()).unwrap_or_default();
            let input = match cache.as_mut() {
                // Pinned: served locally, no collective.
                Some(cache) if pinned => cache.gather_pinned(store, &wanted)?,
                // LRU: the collective always runs, carrying only the misses.
                Some(cache) => cache.fetch_through(store, comm, fetch_group, &wanted)?,
                None => store.fetch(comm, fetch_group, &wanted)?,
            };
            profile.add_compute(Phase::FeatureFetch, fetch_start.elapsed().as_secs_f64());
            profile.add_comm(Phase::FeatureFetch, comm.stats().modeled_time - comm_before);

            let prop_start = std::time::Instant::now();
            let comm_before = comm.stats().modeled_time;
            let (local_loss, grads) = if let Some(sample) = sample {
                let labels = self.batch_labels(&sample.batch);
                let (l, _, grads) = model.loss_and_gradients(sample, &input, &labels)?;
                (Some(l), SageModel::flatten_grads(&grads))
            } else {
                (None, vec![0.0; model.num_parameters()])
            };
            let (contributing, summed) = if let (Some(k), Some(residual)) =
                (self.config.grad_top_k, grad_residual.as_mut())
            {
                // Top-k error-feedback compression of the gradient reduce:
                // fold the residual into the fresh gradient, ship only the
                // k largest-magnitude coordinates as (index, value) pairs,
                // and keep everything unshipped as next step's residual.
                // The sorted sparse lists merge in ascending-rank order at
                // the root and the union broadcasts, so every rank applies
                // the identical update.  The step-count reduce stays exact.
                let n = grads.len();
                let compensated: Vec<f64> =
                    residual.iter().zip(&grads).map(|(r, g)| r + g).collect();
                let pairs: Vec<(usize, f64)> = top_k_indices(&compensated, k)
                    .into_iter()
                    .map(|i| (i, compensated[i]))
                    .collect();
                residual.clone_from(&compensated);
                for &(i, _) in &pairs {
                    residual[i] = 0.0;
                }
                let (contributing, sparse) = if overlap {
                    let pending_count =
                        comm.post_allreduce(usize::from(local_loss.is_some()), |a, b| a + b)?;
                    let pending_sparse = comm.post_allreduce(pairs, |a, b| merge_sparse(a, b))?;
                    (pending_count.wait_reduced(comm)?.max(1), pending_sparse.wait_reduced(comm)?)
                } else {
                    let contributing =
                        comm.allreduce(usize::from(local_loss.is_some()), |a, b| a + b)?.max(1);
                    (contributing, comm.allreduce(pairs, |a, b| merge_sparse(a, b))?)
                };
                let mut summed = vec![0.0; n];
                for (i, v) in sparse {
                    summed[i] = v;
                }
                (contributing, summed)
            } else if overlap {
                // Post both propagation reduces, then wait them in post
                // order: same messages, same fold order (ascending rank on
                // the root), bit-identical to the blocking pair.
                let pending_count =
                    comm.post_allreduce(usize::from(local_loss.is_some()), |a, b| a + b)?;
                let pending_grads = comm.post_allreduce(grads, |a: &Vec<f64>, b| {
                    a.iter().zip(b).map(|(x, y)| x + y).collect()
                })?;
                (pending_count.wait_reduced(comm)?.max(1), pending_grads.wait_reduced(comm)?)
            } else {
                let contributing =
                    comm.allreduce(usize::from(local_loss.is_some()), |a, b| a + b)?.max(1);
                let summed =
                    comm.allreduce(grads, |a, b| a.iter().zip(b).map(|(x, y)| x + y).collect())?;
                (contributing, summed)
            };
            let averaged: Vec<f64> = summed.into_iter().map(|g| g / contributing as f64).collect();
            let grads = model.unflatten_grads(&averaged)?;
            optimizer.step(model.parameters_mut(), &grads)?;
            if let Some(l) = local_loss {
                loss.push(l);
            }
            profile.add_compute(Phase::Propagation, prop_start.elapsed().as_secs_f64());
            profile.add_comm(Phase::Propagation, comm.stats().modeled_time - comm_before);
        }
        Ok(loop_start.elapsed().as_secs_f64())
    }

    /// Evaluates classification accuracy on `vertices` by sampling their
    /// neighborhoods with the session's sampler.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] for an empty vertex set or missing
    /// features/labels.
    pub fn evaluate_model(&self, model: &SageModel, vertices: &[usize]) -> Result<f64> {
        if vertices.is_empty() {
            return Err(GnnError::InvalidConfig("evaluation set is empty".into()));
        }
        let features = self
            .dataset
            .graph
            .features()
            .ok_or_else(|| GnnError::InvalidConfig("dataset has no feature matrix".into()))?;
        let labels = self
            .dataset
            .graph
            .labels()
            .ok_or_else(|| GnnError::InvalidConfig("dataset has no labels".into()))?;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(0xE7A1));
        let mut predictions = Vec::with_capacity(vertices.len());
        let mut truth = Vec::with_capacity(vertices.len());
        for chunk in vertices.chunks(self.config.batch_size) {
            let sample =
                self.sampler.sample_minibatch(self.dataset.graph.adjacency(), chunk, &mut rng)?;
            let input = features.gather_rows(sample.input_vertices())?;
            predictions.extend(model.predict(&sample, &input)?);
            truth.extend(chunk.iter().map(|&v| labels[v]));
        }
        accuracy(&predictions, &truth)
    }
}

/// The indices of the `k` largest-magnitude entries of `values`, ascending.
/// Ties break toward the lower index, so the selection is a pure function of
/// the values — every rank running this on the same vector picks the same
/// coordinates.
fn top_k_indices(values: &[f64], k: usize) -> Vec<usize> {
    let k = k.min(values.len());
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_unstable_by(|&a, &b| values[b].abs().total_cmp(&values[a].abs()).then(a.cmp(&b)));
    order.truncate(k);
    order.sort_unstable();
    order
}

/// Merges two index-sorted sparse gradients, summing values on shared
/// indices.  The fold operator of the top-k gradient reduce: associative over
/// the ascending-rank fold order the collectives use, and the output stays
/// index-sorted, so the reduce is deterministic end to end.
fn merge_sparse(a: &[(usize, f64)], b: &[(usize, f64)]) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    use dmbs_sampling::{
        BulkSamplerConfig, DistConfig, GraphSageSampler, LocalBackend, Partitioned1p5dBackend,
        ReplicatedBackend,
    };

    fn tiny_dataset(seed: u64) -> Dataset {
        let mut cfg = DatasetConfig::products_like(7); // 128 vertices
        cfg.feature_dim = 16;
        cfg.num_classes = 4;
        cfg.train_fraction = 0.5;
        cfg.homophily = 0.6;
        build_dataset(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    fn local_session(seed: u64) -> TrainingSession<GraphSageSampler, LocalBackend> {
        TrainingSession::builder()
            .dataset(tiny_dataset(seed))
            .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
            .backend(LocalBackend::new(BulkSamplerConfig::new(16, 4)).unwrap())
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(3)
            .seed(42)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_components_and_positive_values() {
        let b: SessionBuilder<GraphSageSampler, LocalBackend> = TrainingSession::builder();
        assert!(b.build().is_err());
        let err = TrainingSession::<GraphSageSampler, LocalBackend>::builder()
            .dataset(tiny_dataset(1))
            .sampler(GraphSageSampler::new(vec![2]))
            .backend(LocalBackend::new(BulkSamplerConfig::new(8, 2)).unwrap())
            .epochs(0)
            .build();
        assert!(err.is_err());
        let err = TrainingSession::<GraphSageSampler, LocalBackend>::builder()
            .dataset(tiny_dataset(1))
            .sampler(GraphSageSampler::new(vec![2]))
            .backend(LocalBackend::new(BulkSamplerConfig::new(8, 2)).unwrap())
            .bulk(0)
            .build();
        assert!(err.is_err());
        // A session bulk k larger than the backend's would make the stream
        // and the distributed pipeline draw different samples: rejected.
        let err = TrainingSession::<GraphSageSampler, LocalBackend>::builder()
            .dataset(tiny_dataset(1))
            .sampler(GraphSageSampler::new(vec![2]))
            .backend(LocalBackend::new(BulkSamplerConfig::new(8, 2)).unwrap())
            .bulk(8)
            .build();
        assert!(err.is_err());
        // Top-0 gradient compression would ship nothing, ever: rejected.
        let err = TrainingSession::<GraphSageSampler, LocalBackend>::builder()
            .dataset(tiny_dataset(1))
            .sampler(GraphSageSampler::new(vec![2]))
            .backend(LocalBackend::new(BulkSamplerConfig::new(8, 2)).unwrap())
            .grad_top_k(0)
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn top_k_selection_and_sparse_merge_are_deterministic() {
        let v = [0.5, -2.0, 2.0, 0.0, -0.5];
        // Magnitude ties (indices 1/2 at |2.0|, then 0/4 at |0.5|) break
        // toward the lower index; the result comes back index-sorted.
        assert_eq!(top_k_indices(&v, 3), vec![0, 1, 2]);
        assert_eq!(top_k_indices(&v, 0), Vec::<usize>::new());
        assert_eq!(top_k_indices(&v, 99), vec![0, 1, 2, 3, 4]);
        let a = vec![(0, 1.0), (3, 2.0)];
        let b = vec![(1, 0.5), (3, -1.0), (7, 4.0)];
        assert_eq!(merge_sparse(&a, &b), vec![(0, 1.0), (1, 0.5), (3, 1.0), (7, 4.0)]);
        assert_eq!(merge_sparse(&a, &[]), a);
        assert_eq!(merge_sparse(&[], &b), b);
    }

    #[test]
    fn stream_yields_every_batch_in_plan_order() {
        let session = local_session(1);
        let plan = session.plan(0).unwrap();
        let minibatches: Vec<Minibatch> =
            session.stream(0).unwrap().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(minibatches.len(), plan.num_batches());
        for (i, mb) in minibatches.iter().enumerate() {
            assert_eq!(mb.index, i);
            assert_eq!(mb.epoch, 0);
            assert_eq!(mb.sample.batch.as_slice(), plan.batch(i));
            assert_eq!(mb.group, i / 4);
        }
    }

    #[test]
    fn stream_matches_eager_sampling_exactly() {
        // Double-buffered prefetch must not change what is sampled.
        let session = local_session(2);
        for epoch in 0..2 {
            let eager = session.sample_epoch_eager(epoch).unwrap();
            let streamed: Vec<Minibatch> =
                session.stream(epoch).unwrap().collect::<Result<Vec<_>>>().unwrap();
            assert_eq!(streamed.len(), eager.num_batches());
            for (mb, want) in streamed.iter().zip(&eager.minibatches) {
                assert_eq!(&mb.sample, want);
            }
        }
    }

    #[test]
    fn dropping_stream_midway_shuts_down_worker() {
        let session = local_session(3);
        let mut stream = session.stream(0).unwrap();
        let first = stream.next().unwrap().unwrap();
        assert_eq!(first.index, 0);
        drop(stream); // must not hang or leak the worker
    }

    #[test]
    fn local_training_learns_above_chance() {
        let session = local_session(4);
        let report = session.train().unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert!(report.epochs.last().unwrap().mean_loss < report.epochs[0].mean_loss);
        let accuracy = report.test_accuracy.unwrap();
        let chance = 1.0 / session.dataset().graph.num_classes() as f64;
        assert!(accuracy > chance * 1.5, "accuracy {accuracy} vs chance {chance}");
        let e = &report.epochs[0];
        assert!(e.sampling_time() > 0.0);
        assert!(e.feature_fetch_time() > 0.0);
        assert!(e.propagation_time() > 0.0);
    }

    #[test]
    fn replicated_training_runs_all_phases_and_communicates() {
        let session = TrainingSession::builder()
            .dataset(tiny_dataset(5))
            .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
            .backend(
                ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 4)))
                    .unwrap(),
            )
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(2)
            .seed(11)
            .build()
            .unwrap();
        let report = session.train().unwrap();
        assert_eq!(report.epochs.len(), 2);
        for e in &report.epochs {
            assert!(e.sampling_time() > 0.0);
            assert!(e.feature_fetch_time() > 0.0);
            assert!(e.propagation_time() > 0.0);
            assert!(e.comm.messages > 0);
            assert!(e.mean_loss.is_finite());
        }
        assert!(report.test_accuracy.is_some());
    }

    #[test]
    fn partitioned_backend_also_drives_training() {
        // The same session API trains through the graph-partitioned strategy.
        let session = TrainingSession::builder()
            .dataset(tiny_dataset(6))
            .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
            .backend(
                Partitioned1p5dBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 4)))
                    .unwrap(),
            )
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(1)
            .seed(13)
            .build()
            .unwrap();
        let report = session.train().unwrap();
        assert_eq!(report.epochs.len(), 1);
        let e = &report.epochs[0];
        assert!(e.sampling_time() > 0.0);
        assert!(e.mean_loss.is_finite());
        // Partitioned sampling really communicates.
        assert!(e.comm.messages > 0);
    }

    #[test]
    fn stream_exposes_the_worker_computed_fetch_plans() {
        let session = local_session(8);
        let eager = session.sample_epoch_eager(0).unwrap();
        let mut stream = session.stream(0).unwrap();
        let mut groups_seen = Vec::new();
        while let Some(mb) = stream.next() {
            let mb = mb.unwrap();
            let plan = stream.group_plan(mb.group).expect("plan arrives with the group");
            assert!(!plan.unique_vertices().is_empty());
            if groups_seen.last() != Some(&mb.group) {
                groups_seen.push(mb.group);
            }
        }
        // Per-group plans match planning the eager groups directly.
        for &g in &groups_seen {
            let group_mbs: Vec<_> = eager.minibatches.iter().skip(g * 4).take(4).cloned().collect();
            assert_eq!(
                stream.group_plan(g).unwrap(),
                &dmbs_sampling::FetchPlan::from_minibatches(&group_mbs),
                "group {g} plan mismatch"
            );
        }
    }

    #[test]
    fn feature_cache_modes_leave_local_training_byte_identical() {
        // The cache is pure work avoidance: same losses, same accuracy, bit
        // for bit — only the hit/miss bookkeeping differs.
        let dataset = Arc::new(tiny_dataset(9));
        let base = TrainingSession::<GraphSageSampler, LocalBackend>::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
            .backend(LocalBackend::new(BulkSamplerConfig::new(16, 4)).unwrap())
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(2)
            .seed(31);
        let off = base.clone().build().unwrap().train().unwrap();
        let pinned = base
            .clone()
            .feature_cache(FeatureCacheConfig::EpochPinned)
            .build()
            .unwrap()
            .train()
            .unwrap();
        let lru = base
            .feature_cache(FeatureCacheConfig::Lru { byte_budget: 1 << 16 })
            .build()
            .unwrap()
            .train()
            .unwrap();
        for cached in [&pinned, &lru] {
            for (a, b) in off.epochs.iter().zip(&cached.epochs) {
                assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            }
            assert_eq!(
                off.test_accuracy.unwrap().to_bits(),
                cached.test_accuracy.unwrap().to_bits()
            );
        }
        // The uncached run reports no cache activity; cached runs do.
        assert_eq!(off.epochs[0].cache_hit_rate(), None);
        assert!(pinned.epochs[0].cache_hit_rate().unwrap() > 0.0);
        assert!(lru.epochs[0].cache_hit_rate().is_some());
    }

    #[test]
    fn distributed_pinned_cache_books_balance_exactly() {
        // Sampling and gradient traffic are identical cache-on vs cache-off,
        // so the words the pinned pipeline kept off the wire must equal the
        // difference in total words sent: saved + sent == uncached bill.
        let dataset = Arc::new(tiny_dataset(10));
        let base = TrainingSession::<GraphSageSampler, ReplicatedBackend>::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
            .backend(
                ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 4)))
                    .unwrap(),
            )
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(2)
            .seed(33)
            .without_evaluation();
        let off = base.clone().build().unwrap().train().unwrap();
        for cache in
            [FeatureCacheConfig::EpochPinned, FeatureCacheConfig::Lru { byte_budget: 1 << 20 }]
        {
            let on = base.clone().feature_cache(cache).build().unwrap().train().unwrap();
            for (a, b) in off.epochs.iter().zip(&on.epochs) {
                assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits(), "{cache:?}");
                assert!(b.comm.words_sent <= a.comm.words_sent, "{cache:?}");
                assert_eq!(
                    b.comm.words_sent + b.comm.words_saved,
                    a.comm.words_sent,
                    "{cache:?}: the α–β books must balance"
                );
            }
        }
    }

    #[test]
    fn compressed_feature_wire_balances_bytes_and_still_learns() {
        let dataset = Arc::new(tiny_dataset(12));
        let base = TrainingSession::<GraphSageSampler, ReplicatedBackend>::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
            .backend(
                ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 4)))
                    .unwrap(),
            )
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(2)
            .seed(21)
            .without_evaluation();
        let exact = base.clone().build().unwrap().train().unwrap();
        for e in &exact.epochs {
            // Exact default: every word costs exactly 8 bytes, nothing saved.
            assert_eq!(e.comm.bytes_on_wire, e.comm.words_sent * 8);
            assert_eq!(e.comm.bytes_saved, 0);
        }
        for codec in [Codec::Fp16, Codec::Int8] {
            let on = base.clone().wire_codec(codec).build().unwrap().train().unwrap();
            for (a, b) in exact.epochs.iter().zip(&on.epochs) {
                // The codec shrinks bytes, never the logical schedule.
                assert_eq!(a.comm.words_sent, b.comm.words_sent, "{codec}");
                assert_eq!(a.comm.messages, b.comm.messages, "{codec}");
                assert!(b.comm.bytes_on_wire < a.comm.bytes_on_wire, "{codec}");
                assert_eq!(
                    b.comm.bytes_on_wire + b.comm.bytes_saved,
                    a.comm.bytes_on_wire,
                    "{codec}: the byte books must balance"
                );
                assert!(b.mean_loss.is_finite(), "{codec}");
            }
            // Quantization error is bounded, so the loss trajectory stays
            // close to the exact run's.
            let (a, b) = (exact.epochs.last().unwrap(), on.epochs.last().unwrap());
            assert!(
                (a.mean_loss - b.mean_loss).abs() < 0.25,
                "{codec}: exact {} vs compressed {}",
                a.mean_loss,
                b.mean_loss
            );
        }
    }

    #[test]
    fn grad_top_k_shrinks_the_gradient_wire_and_still_trains() {
        let dataset = Arc::new(tiny_dataset(13));
        let base = TrainingSession::<GraphSageSampler, ReplicatedBackend>::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
            .backend(
                ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 4)))
                    .unwrap(),
            )
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(2)
            .seed(27)
            .without_evaluation();
        let dense = base.clone().build().unwrap().train().unwrap();
        let sparse = base.grad_top_k(32).build().unwrap().train().unwrap();
        for (a, b) in dense.epochs.iter().zip(&sparse.epochs) {
            // Same collective schedule, genuinely fewer words: 2·k words of
            // (index, value) pairs replace one word per model parameter.
            assert_eq!(a.comm.messages, b.comm.messages);
            assert!(b.comm.words_sent < a.comm.words_sent);
            assert!(b.mean_loss.is_finite());
        }
        // Error feedback delays gradient mass instead of dropping it, so
        // training still converges.
        assert!(sparse.epochs.last().unwrap().mean_loss < sparse.epochs[0].mean_loss);
    }

    #[test]
    fn norep_moves_more_feature_data() {
        let dataset = Arc::new(tiny_dataset(7));
        let backend =
            ReplicatedBackend::new(DistConfig::new(4, 4, BulkSamplerConfig::new(16, 4))).unwrap();
        let base = TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
            .backend(backend.clone())
            .hidden_dim(16)
            .epochs(1)
            .seed(9);
        let rep = base.clone().build().unwrap().train().unwrap();
        let norep = base.without_feature_replication().build().unwrap().train().unwrap();
        assert!(norep.epochs[0].comm.words_sent > rep.epochs[0].comm.words_sent);
    }
}

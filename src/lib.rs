//! # dmbs — Distributed Matrix-Based Sampling for GNN Training
//!
//! Umbrella crate re-exporting the full public API of the `dmbs` workspace, a
//! from-scratch Rust reproduction of *Distributed Matrix-Based Sampling for
//! Graph Neural Network Training* (Tripathy, Yelick, Buluç — MLSys 2024).
//!
//! The workspace is organised as:
//!
//! * [`matrix`] — sparse (COO/CSR/CSC) and dense matrices, SpGEMM, SpMM;
//! * [`graph`] — synthetic graph generators, OGB-like dataset stand-ins,
//!   1D / 1.5D partitioning and minibatch construction;
//! * [`comm`] — a simulated multi-rank runtime (threads + channels) with
//!   collectives and an α–β communication cost model;
//! * [`sampling`] — the paper's contribution: matrix-based bulk minibatch
//!   sampling (GraphSAGE, LADIES, FastGCN) behind the unified
//!   [`SamplingBackend`](sampling::SamplingBackend) trait, whose three
//!   implementations cover single-device (§4), graph-replicated (§5.1) and
//!   1.5D graph-partitioned (§5.2) execution of the *same* Algorithm 1;
//! * [`gnn`] — GraphSAGE layers with explicit gradients, losses, optimizers,
//!   distributed feature fetching, and the fluent
//!   [`TrainingSession`](gnn::TrainingSession) builder whose
//!   [`MinibatchStream`](gnn::MinibatchStream) overlaps bulk sampling with
//!   training (§6 pipelining).
//!
//! # Quickstart
//!
//! Any sampler composes with any backend through one entry point, and a
//! `TrainingSession` drives the end-to-end pipeline:
//!
//! ```
//! use dmbs::gnn::TrainingSession;
//! use dmbs::graph::datasets::{build_dataset, DatasetConfig};
//! use dmbs::sampling::{
//!     BulkSamplerConfig, GraphSageSampler, LocalBackend, SamplingBackend,
//! };
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small synthetic dataset with features and labels.
//! let mut cfg = DatasetConfig::products_like(8); // 256 vertices
//! cfg.feature_dim = 8;
//! cfg.num_classes = 4;
//! cfg.train_fraction = 0.5;
//! let dataset = build_dataset(&cfg, &mut StdRng::seed_from_u64(0))?;
//!
//! // Bulk-sample two minibatches through the unified backend API.
//! let sampler = GraphSageSampler::new(vec![5, 5]);
//! let backend = LocalBackend::new(BulkSamplerConfig::new(16, 2))?;
//! let batches: Vec<Vec<usize>> =
//!     dataset.train_set.chunks(16).take(2).map(<[usize]>::to_vec).collect();
//! let epoch = backend.sample_epoch(&sampler, dataset.graph.adjacency(), &batches, 0)?;
//! assert_eq!(epoch.num_batches(), 2);
//!
//! // Or let a TrainingSession run the whole pipeline with prefetch.
//! let report = TrainingSession::builder()
//!     .dataset(dataset)
//!     .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
//!     .backend(LocalBackend::new(BulkSamplerConfig::new(16, 2))?)
//!     .hidden_dim(8)
//!     .epochs(1)
//!     .build()?
//!     .train()?;
//! assert_eq!(report.epochs.len(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! Swap [`LocalBackend`](sampling::LocalBackend) for
//! [`ReplicatedBackend`](sampling::ReplicatedBackend) or
//! [`Partitioned1p5dBackend`](sampling::Partitioned1p5dBackend) — built from
//! the shared [`DistConfig`](sampling::DistConfig) — and the same session
//! trains data-parallel over simulated ranks.

#![deny(missing_docs)]

pub use dmbs_comm as comm;
pub use dmbs_gnn as gnn;
pub use dmbs_graph as graph;
pub use dmbs_matrix as matrix;
pub use dmbs_sampling as sampling;

//! API-redesign safety net: the new `SamplingBackend` trait and the
//! `TrainingSession` minibatch stream must reproduce the legacy free
//! functions' output **byte for byte** under a fixed seed.
//!
//! The legacy functions (`sample_replicated*`, `run_partitioned_*`) are
//! deprecated wrappers now, but they preserve the original call shape —
//! per-rank assignment, per-rank seed derivation, flattening order — so
//! equality here pins the redesign to the old behavior.

#![allow(deprecated)]

use dmbs::comm::Runtime;
use dmbs::gnn::TrainingSession;
use dmbs::graph::datasets::{build_dataset, DatasetConfig};
use dmbs::graph::generators::{figure1_example, rmat, RmatConfig};
use dmbs::sampling::partitioned::{
    flatten_row_outputs, run_partitioned_ladies, run_partitioned_sage,
};
use dmbs::sampling::replicated::{sample_replicated, sample_replicated_flat};
use dmbs::sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, LadiesSampler, Partitioned1p5dBackend,
    ReplicatedBackend, Sampler, SamplingBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_batches(n: usize, k: usize, b: usize) -> Vec<Vec<usize>> {
    (0..k).map(|i| (0..b).map(|j| (i * 131 + j * 17) % n).collect()).collect()
}

#[test]
fn replicated_backend_is_byte_identical_to_legacy_free_function() {
    let graph = rmat(&RmatConfig::new(7, 6), &mut StdRng::seed_from_u64(2)).unwrap();
    let a = graph.adjacency();
    let batches = random_batches(graph.num_vertices(), 7, 8);
    let bulk = BulkSamplerConfig::new(8, batches.len());
    let sampler = GraphSageSampler::new(vec![4, 3]);

    for p in [1usize, 3, 4] {
        let runtime = Runtime::new(p).unwrap();
        let legacy = sample_replicated_flat(&runtime, &sampler, a, &batches, &bulk, 42).unwrap();
        let legacy_per_rank =
            sample_replicated(&runtime, &sampler, a, &batches, &bulk, 42).unwrap();

        let backend = ReplicatedBackend::new(DistConfig::new(p, 1, bulk)).unwrap();
        let epoch = backend.sample_epoch(&sampler, a, &batches, 42).unwrap();

        assert_eq!(epoch.output.minibatches, legacy.minibatches, "p={p}");
        for (unit, rank_out) in epoch.per_unit.iter().zip(&legacy_per_rank) {
            assert_eq!(unit.num_batches, rank_out.num_batches(), "p={p}");
        }
    }
}

#[test]
fn replicated_backend_matches_hand_rolled_per_rank_sampling() {
    // Independent reconstruction of the §5.1 contract (round-robin batches,
    // per-rank seed = epoch seed + rank), without going through either API.
    let graph = figure1_example();
    let a = graph.adjacency();
    let batches = vec![vec![1, 5], vec![0, 3], vec![2, 4], vec![5, 1], vec![4, 0]];
    let bulk = BulkSamplerConfig::new(2, batches.len());
    let sampler = GraphSageSampler::new(vec![2, 2]);
    let p = 3;
    let seed = 7u64;

    let mut expected = vec![None; batches.len()];
    for rank in 0..p {
        let my_indices: Vec<usize> = (0..batches.len()).filter(|i| i % p == rank).collect();
        let my_batches: Vec<Vec<usize>> = my_indices.iter().map(|&i| batches[i].clone()).collect();
        let mut rng = StdRng::seed_from_u64(seed + rank as u64);
        let config = BulkSamplerConfig::new(2, my_batches.len());
        let out = sampler.sample_bulk(a, &my_batches, &config, &mut rng).unwrap();
        for (slot, mb) in my_indices.into_iter().zip(out.minibatches) {
            expected[slot] = Some(mb);
        }
    }

    let backend = ReplicatedBackend::new(DistConfig::new(p, 1, bulk)).unwrap();
    let epoch = backend.sample_epoch(&sampler, a, &batches, seed).unwrap();
    for (got, want) in epoch.minibatches().iter().zip(expected) {
        assert_eq!(got, &want.unwrap());
    }
}

#[test]
fn partitioned_backend_is_byte_identical_to_legacy_free_functions() {
    let graph = rmat(&RmatConfig::new(7, 5), &mut StdRng::seed_from_u64(4)).unwrap();
    let a = graph.adjacency();
    let batches = random_batches(graph.num_vertices(), 6, 8);
    let bulk = BulkSamplerConfig::new(8, batches.len());

    for (p, c) in [(4usize, 1usize), (4, 2), (8, 2)] {
        let runtime = Runtime::new(p).unwrap();

        // GraphSAGE.
        let sage = GraphSageSampler::new(vec![4, 3]);
        let legacy = flatten_row_outputs(
            run_partitioned_sage(&runtime, c, a, &batches, &[4, 3], false, 23).unwrap(),
            batches.len(),
        )
        .unwrap();
        let backend = Partitioned1p5dBackend::new(DistConfig::new(p, c, bulk)).unwrap();
        let epoch = backend.sample_epoch(&sage, a, &batches, 23).unwrap();
        assert_eq!(epoch.output.minibatches, legacy.minibatches, "sage p={p} c={c}");

        // LADIES.
        let ladies = LadiesSampler::new(1, 12);
        let legacy = flatten_row_outputs(
            run_partitioned_ladies(&runtime, c, a, &batches, 1, 12, 31).unwrap(),
            batches.len(),
        )
        .unwrap();
        let epoch = backend.sample_epoch(&ladies, a, &batches, 31).unwrap();
        assert_eq!(epoch.output.minibatches, legacy.minibatches, "ladies p={p} c={c}");
    }
}

#[test]
fn minibatch_stream_prefetch_equals_eager_sampling() {
    // The §6 pipelining must be purely a scheduling change: the stream's
    // double-buffered prefetch yields exactly the same minibatches, in the
    // same order, as eager epoch sampling.
    let mut cfg = DatasetConfig::products_like(8); // 256 vertices
    cfg.feature_dim = 8;
    cfg.num_classes = 4;
    cfg.train_fraction = 0.5;
    let dataset = build_dataset(&cfg, &mut StdRng::seed_from_u64(6)).unwrap();

    let session = TrainingSession::builder()
        .dataset(dataset)
        .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
        .backend(
            ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(16, 4))).unwrap(),
        )
        .hidden_dim(8)
        .epochs(1)
        .seed(21)
        .build()
        .unwrap();

    for epoch in 0..2 {
        let eager = session.sample_epoch_eager(epoch).unwrap();
        let streamed: Vec<_> =
            session.stream(epoch).unwrap().collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(streamed.len(), eager.num_batches());
        for (mb, want) in streamed.iter().zip(&eager.minibatches) {
            assert_eq!(&mb.sample, want, "epoch {epoch} index {}", mb.index);
        }
    }
}

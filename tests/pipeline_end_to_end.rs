//! Cross-crate integration tests for the end-to-end training pipeline:
//! learning above chance level, matching accuracy between bulk matrix
//! sampling and per-vertex sampling, and consistent phase accounting in the
//! distributed pipeline.

use dmbs::comm::Runtime;
use dmbs::gnn::trainer::{train_distributed, train_single_device, SamplerChoice};
use dmbs::gnn::TrainingConfig;
use dmbs::graph::datasets::{build_dataset, Dataset, DatasetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(seed: u64) -> Dataset {
    let mut cfg = DatasetConfig::products_like(8); // 256 vertices
    cfg.feature_dim = 16;
    cfg.num_classes = 4;
    cfg.train_fraction = 0.5;
    cfg.homophily = 0.6;
    build_dataset(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn config() -> TrainingConfig {
    TrainingConfig {
        fanouts: vec![8, 4],
        hidden_dim: 24,
        batch_size: 32,
        bulk_size: 4,
        learning_rate: 0.05,
        epochs: 4,
        seed: 11,
    }
}

#[test]
fn single_device_training_learns_above_chance() {
    let ds = dataset(1);
    let report = train_single_device(&ds, &config(), SamplerChoice::MatrixSage).unwrap();
    let accuracy = report.test_accuracy.unwrap();
    let chance = 1.0 / ds.graph.num_classes() as f64;
    assert!(accuracy > chance * 1.5, "accuracy {accuracy} vs chance {chance}");
    // Loss decreased.
    assert!(report.epochs.last().unwrap().mean_loss < report.epochs[0].mean_loss);
}

#[test]
fn bulk_matrix_sampling_does_not_hurt_accuracy() {
    // The §8.1.3 claim, end to end across crates.
    let ds = dataset(2);
    let cfg = config();
    let matrix = train_single_device(&ds, &cfg, SamplerChoice::MatrixSage).unwrap();
    let baseline = train_single_device(&ds, &cfg, SamplerChoice::PerVertexSage).unwrap();
    let a = matrix.test_accuracy.unwrap();
    let b = baseline.test_accuracy.unwrap();
    assert!((a - b).abs() < 0.25, "matrix sampling accuracy {a} vs per-vertex {b}");
}

#[test]
fn distributed_pipeline_phases_and_scaling_bookkeeping() {
    let ds = dataset(3);
    let mut cfg = config();
    cfg.epochs = 2;
    for (p, c) in [(2usize, 2usize), (4, 2)] {
        let runtime = Runtime::new(p).unwrap();
        let epochs =
            train_distributed(&runtime, &ds, &cfg, c, true, SamplerChoice::MatrixSage).unwrap();
        assert_eq!(epochs.len(), 2);
        for e in &epochs {
            // Every phase of Figure 3 is accounted for.
            assert!(e.sampling_time() > 0.0, "p={p}");
            assert!(e.feature_fetch_time() > 0.0, "p={p}");
            assert!(e.propagation_time() > 0.0, "p={p}");
            assert!(e.total_time() >= e.sampling_time() + e.propagation_time());
            // Gradient all-reduce and feature fetching moved data.
            assert!(e.comm.messages > 0, "p={p}");
            assert!(e.mean_loss.is_finite());
        }
    }
}

#[test]
fn distributed_and_single_device_losses_are_comparable() {
    // Data-parallel training over simulated ranks should optimize the same
    // objective: final epoch losses must be in the same ballpark.
    let ds = dataset(4);
    let mut cfg = config();
    cfg.epochs = 3;
    let single = train_single_device(&ds, &cfg, SamplerChoice::MatrixSage).unwrap();
    let runtime = Runtime::new(4).unwrap();
    let distributed =
        train_distributed(&runtime, &ds, &cfg, 2, true, SamplerChoice::MatrixSage).unwrap();
    let s = single.epochs.last().unwrap().mean_loss;
    let d = distributed.last().unwrap().mean_loss;
    assert!(
        (s - d).abs() < 1.0,
        "single-device final loss {s} vs distributed {d} diverged"
    );
}

//! Criterion micro-benchmark: inverse transform sampling vs rejection
//! sampling (the §2.3 design choice and the ITS-vs-rejection ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmbs_matrix::{CooMatrix, CsrMatrix};
use dmbs_sampling::its::{its_without_replacement, rejection_without_replacement, sample_rows};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_its(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("distribution_sampling");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(2);

    for &support in &[64usize, 1024] {
        // Skewed (power-law-ish) weights, like real neighborhood degrees.
        let weights: Vec<f64> = (0..support).map(|i| 1.0 / (i + 1) as f64).collect();
        group.bench_with_input(BenchmarkId::new("its_s15", support), &support, |bench, _| {
            let mut local = StdRng::seed_from_u64(3);
            bench.iter(|| its_without_replacement(&weights, 15, &mut local).expect("its"));
        });
        group.bench_with_input(BenchmarkId::new("rejection_s15", support), &support, |bench, _| {
            let mut local = StdRng::seed_from_u64(3);
            bench.iter(|| {
                rejection_without_replacement(&weights, 15, &mut local).expect("rejection")
            });
        });
    }

    // Row-wise sampling of a whole probability matrix (the SAMPLE step).
    let rows = 512usize;
    let cols = 4096usize;
    let mut coo = CooMatrix::new(rows, cols);
    for r in 0..rows {
        for _ in 0..32 {
            coo.push(r, rng.gen_range(0..cols), rng.gen::<f64>()).expect("in range");
        }
    }
    let p = CsrMatrix::from_coo(&coo);
    group.bench_function("sample_rows_512x4096_s10", |bench| {
        let mut local = StdRng::seed_from_u64(4);
        bench.iter(|| sample_rows(&p, 10, &mut local).expect("sample"));
    });
    group.finish();
}

criterion_group!(benches, bench_its);
criterion_main!(benches);

//! The low-latency inference serving tier.
//!
//! Training answers "how fast can we finish an epoch"; serving answers "how
//! fast can we answer one user".  This module serves per-request
//! neighbor-sampling + forward-pass queries against a trained
//! [`ModelSnapshot`] exported by
//! [`TrainingSession::train_and_export`](crate::session::TrainingSession::train_and_export),
//! riding the bulk machinery the training tier already built instead of
//! growing a parallel implementation:
//!
//! ```text
//! request ─▶ admission ─▶ coalesce ─▶ micro-bulk ─▶ cached ─▶ forward ─▶ reply
//!            control      window      sample         fetch
//!            (queue depth  (batch up   (bulk sampler, (hot tier,
//!             + timeout)    to k reqs)  shared SpGEMM  FeatureCache,
//!                                       workspace)     one α per bulk)
//! ```
//!
//! * **Micro-bulk coalescing.**  Requests that arrive within a configurable
//!   window (bounded by [`ServingConfig::max_micro_bulk`]) are batched into
//!   one micro-bulk: one sampling pass per request through the bulk kernels
//!   (sharing the thread-local SpGEMM workspace), then **one** deduplicated
//!   feature gather and one modeled α–β fetch message for the whole bulk.
//!   Each request samples from its own seeded RNG stream
//!   ([`dmbs_sampling::micro`]), so coalescing is *byte-transparent*: a
//!   request's prediction is bit-for-bit independent of which other requests
//!   share its bulk.
//! * **Hot-vertex pinned tier.**  A running frequency count over gathered
//!   vertices periodically re-pins the hottest feature rows; pinned rows are
//!   served without being charged to the modeled fetch message.  Under a
//!   Zipf request mix (the open-loop bench) the tier absorbs the head of the
//!   distribution.
//! * **Admission control.**  A queue-depth bound sheds arrivals and a
//!   per-request timeout budget sheds stale queue entries, both with typed
//!   [`ServeError`]s — overload degrades into counted rejections, not
//!   unbounded queues.
//!
//! The open-loop driver ([`RequestTrace`] + [`ServingSession::run_trace`])
//! runs the queueing dynamics in deterministic *virtual* time driven by the
//! modeled service cost, so latency percentiles, coalescing factors and shed
//! counts are exactly reproducible across runs — the serving analogue of the
//! training tier's modeled α–β accounting — while measured wall time is
//! reported separately.
//!
//! # Example
//!
//! ```
//! use dmbs_gnn::serve::{ServingConfig, ServingSession};
//! use dmbs_gnn::session::TrainingSession;
//! use dmbs_graph::datasets::{build_dataset, DatasetConfig};
//! use dmbs_sampling::{BulkSamplerConfig, GraphSageSampler, LocalBackend};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = DatasetConfig::products_like(6); // 64 vertices
//! cfg.feature_dim = 8;
//! cfg.num_classes = 4;
//! let dataset = build_dataset(&cfg, &mut StdRng::seed_from_u64(1))?;
//! let sampler = GraphSageSampler::new(vec![3, 3]).with_self_loops();
//! let session = TrainingSession::builder()
//!     .dataset(dataset.clone())
//!     .sampler(sampler.clone())
//!     .backend(LocalBackend::new(BulkSamplerConfig::new(8, 2))?)
//!     .epochs(1)
//!     .build()?;
//! let (_report, snapshot) = session.train_and_export()?;
//!
//! let mut serving =
//!     ServingSession::new(dataset, sampler, snapshot, ServingConfig::default())?;
//! let response = serving.serve_one(5)?;
//! assert_eq!(response.vertex, 5);
//! assert!(response.prediction < 4);
//! # Ok(())
//! # }
//! ```

use crate::error::GnnError;
use crate::features::{FeatureCache, FeatureCacheConfig};
use crate::model::SageModel;
use dmbs_comm::{CommStats, CostModel};
use dmbs_graph::datasets::Dataset;
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::workspace::trim_thread_workspace;
use dmbs_matrix::DenseMatrix;
use dmbs_sampling::micro::{request_stream_seed, sample_micro_bulk, MicroRequest};
use dmbs_sampling::{BulkSamplerConfig, Sampler, SamplingError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Result alias for the serving tier.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Typed failures of the serving tier.
///
/// Mirrors the [`GnnError`] pattern: struct-field variants carrying the
/// numbers a caller needs to react (retry, back off, fix the request), plus
/// a wrapper for errors propagated from the training-tier crates.
#[derive(Debug)]
pub enum ServeError {
    /// The admission queue is full; the request was shed at arrival.
    AdmissionRejected {
        /// Requests already queued when this one arrived.
        queue_depth: usize,
        /// The configured [`ServingConfig::queue_depth`] bound.
        limit: usize,
    },
    /// The request waited in the queue past its timeout budget and was shed
    /// before service.
    TimeoutExceeded {
        /// Seconds the request had waited when it was examined.
        waited: f64,
        /// The configured [`ServingConfig::timeout_budget`].
        budget: f64,
    },
    /// The requested seed vertex does not exist in the served graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        limit: usize,
    },
    /// The model snapshot does not fit the dataset or sampler it is being
    /// served against.
    ShapeMismatch {
        /// Which dimension disagrees (`"feature_dim"`, `"num_vertices"`,
        /// `"num_layers"`).
        what: &'static str,
        /// The snapshot's value.
        model: usize,
        /// The dataset's / sampler's value.
        graph: usize,
    },
    /// An error propagated from the model / feature layers.
    Gnn(GnnError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::AdmissionRejected { queue_depth, limit } => write!(
                f,
                "admission rejected: queue holds {queue_depth} requests (limit {limit})"
            ),
            ServeError::TimeoutExceeded { waited, budget } => write!(
                f,
                "timeout exceeded: request waited {waited:.6}s (budget {budget:.6}s)"
            ),
            ServeError::VertexOutOfRange { vertex, limit } => {
                write!(f, "vertex {vertex} out of range (graph has {limit} vertices)")
            }
            ServeError::ShapeMismatch { what, model, graph } => write!(
                f,
                "model/graph shape mismatch on {what}: snapshot has {model}, serving target has {graph}"
            ),
            ServeError::Gnn(e) => write!(f, "serving failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Gnn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GnnError> for ServeError {
    fn from(e: GnnError) -> Self {
        ServeError::Gnn(e)
    }
}

impl From<SamplingError> for ServeError {
    fn from(e: SamplingError) -> Self {
        ServeError::Gnn(GnnError::Sampling(e))
    }
}

impl From<dmbs_matrix::MatrixError> for ServeError {
    fn from(e: dmbs_matrix::MatrixError) -> Self {
        ServeError::Gnn(GnnError::Matrix(e))
    }
}

/// A trained model frozen for serving, together with the shape of the data
/// it was trained against so a [`ServingSession`] can validate compatibility
/// up front.
///
/// Produced by
/// [`TrainingSession::train_and_export`](crate::session::TrainingSession::train_and_export).
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    model: SageModel,
    feature_dim: usize,
    num_classes: usize,
    num_vertices: usize,
}

impl ModelSnapshot {
    /// Freezes `model` (trained against a graph of `num_vertices` vertices)
    /// for serving.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if `num_vertices` is zero.
    pub fn new(model: SageModel, num_vertices: usize) -> crate::Result<Self> {
        if num_vertices == 0 {
            return Err(GnnError::InvalidConfig("a model snapshot needs a non-empty graph".into()));
        }
        let feature_dim = model.input_dim();
        let num_classes = model.num_classes();
        Ok(ModelSnapshot { model, feature_dim, num_classes, num_vertices })
    }

    /// The frozen model.
    pub fn model(&self) -> &SageModel {
        &self.model
    }

    /// Input feature dimension the model expects.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of vertices in the graph the model was trained on.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of GNN layers (sampling depth the snapshot requires).
    pub fn num_layers(&self) -> usize {
        self.model.num_layers()
    }
}

/// Configuration of a [`ServingSession`].
///
/// The `seconds_per_*` constants and [`ServingConfig::cost`] form the
/// deterministic service-time model that drives the open-loop queueing
/// simulation ([`ServingSession::run_trace`]): serving a micro-bulk of `k`
/// requests with `E` sampled edges and `W` charged fetch words is modeled as
///
/// ```text
/// seconds_per_batch + k·seconds_per_request + E·seconds_per_edge + (α + β·W)
/// ```
///
/// so the per-batch overhead and the α latency amortize over the bulk — the
/// serving-tier analogue of the paper's bulk-sampling argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Largest number of requests coalesced into one micro-bulk.
    pub max_micro_bulk: usize,
    /// Coalescing window in (virtual) seconds: a batch closes no earlier
    /// than its oldest request's arrival plus this window.  `0.0` disables
    /// coalescing entirely (every batch holds one request).
    pub coalesce_window: f64,
    /// Admission bound: arrivals finding this many requests queued are shed.
    pub queue_depth: usize,
    /// Per-request timeout budget in (virtual) seconds: requests that waited
    /// longer are shed at batch-formation time instead of being served.
    pub timeout_budget: f64,
    /// Capacity of the hot-vertex pinned tier in rows (`0` disables it).
    pub hot_capacity: usize,
    /// Re-pin the hot tier from the running frequency counts every this many
    /// micro-bulks.
    pub hot_warm_interval: usize,
    /// Feature-cache mode of the request fetch path (pure copy avoidance,
    /// byte-identical across modes, exactly as in training).
    pub feature_cache: FeatureCacheConfig,
    /// Base seed of the per-request sampling streams.
    pub seed: u64,
    /// α–β model billing the coalesced fetch message of each micro-bulk.
    pub cost: CostModel,
    /// Fixed modeled overhead of serving one micro-bulk (kernel + forward
    /// launch).
    pub seconds_per_batch: f64,
    /// Modeled per-request service time (per-request sampling + forward).
    pub seconds_per_request: f64,
    /// Modeled per-sampled-edge service time (aggregation work).
    pub seconds_per_edge: f64,
    /// Shared-memory parallelism of the sampling kernels on the request
    /// path.
    pub parallelism: Parallelism,
    /// Reuse the thread-local SpGEMM/extraction workspace across requests
    /// and micro-bulks (see [`BulkSamplerConfig::workspace_reuse`]).
    pub workspace_reuse: bool,
    /// Upper bound in bytes on the thread-local kernel workspace kept
    /// resident between micro-bulks; past it the scratch is released
    /// ([`dmbs_matrix::workspace::trim_thread_workspace`]).  `usize::MAX`
    /// never trims.
    pub workspace_byte_bound: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            max_micro_bulk: 16,
            coalesce_window: 1.0e-3,
            queue_depth: 64,
            timeout_budget: 0.1,
            hot_capacity: 256,
            hot_warm_interval: 8,
            feature_cache: FeatureCacheConfig::Off,
            seed: 0,
            cost: CostModel::slingshot(),
            seconds_per_batch: 2.0e-4,
            seconds_per_request: 2.0e-5,
            seconds_per_edge: 5.0e-8,
            parallelism: Parallelism::serial(),
            workspace_reuse: true,
            workspace_byte_bound: usize::MAX,
        }
    }
}

/// One inference request: predict the label of `vertex`.
///
/// The `id` names the request's private sampling stream (via
/// [`request_stream_seed`] under the session seed), so the *same* `(session
/// seed, id, vertex)` triple always produces the *same* prediction — alone,
/// coalesced, or replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRequest {
    /// Caller-assigned request id (the sampling-stream selector).
    pub id: u64,
    /// The vertex whose label is requested.
    pub vertex: usize,
}

/// The answer to one [`ServeRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Id of the request this answers.
    pub id: u64,
    /// The queried vertex.
    pub vertex: usize,
    /// Predicted class (argmax of `logits`).
    pub prediction: usize,
    /// Raw output logits, one per class — kept so byte-identity can be
    /// asserted at full precision, not just on the argmax.
    pub logits: Vec<f64>,
}

/// Deterministic counters of a [`ServingSession`] — every field is exact
/// under a fixed seed and request trace, which is what the CI drift gate
/// pins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests offered to the session (served + shed).
    pub requests_offered: usize,
    /// Requests answered with a prediction.
    pub requests_served: usize,
    /// Requests shed by the admission queue-depth bound.
    pub shed_admission: usize,
    /// Requests shed by the per-request timeout budget.
    pub shed_timeout: usize,
    /// Micro-bulks executed.
    pub batches: usize,
    /// Fetch rows served from the hot-vertex pinned tier.
    pub hot_hits: usize,
    /// Fetch rows not resident in the hot tier (charged to the fetch
    /// message).
    pub hot_misses: usize,
}

impl ServeStats {
    /// Requests shed in total (admission + timeout).
    pub fn shed_total(&self) -> usize {
        self.shed_admission + self.shed_timeout
    }

    /// Mean requests per micro-bulk — `1.0` means coalescing never engaged.
    pub fn coalescing_factor(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests_served as f64 / self.batches as f64
        }
    }

    /// Fraction of fetch rows served from the hot tier, or `None` before any
    /// fetch happened.
    pub fn hot_hit_rate(&self) -> Option<f64> {
        let lookups = self.hot_hits + self.hot_misses;
        (lookups > 0).then(|| self.hot_hits as f64 / lookups as f64)
    }
}

/// The hot-vertex pinned tier: running frequency counts over gathered
/// vertices, and the currently pinned feature rows of the hottest ones.
#[derive(Debug, Default)]
struct HotVertexTier {
    capacity: usize,
    counts: HashMap<usize, u64>,
    pinned: HashMap<usize, Vec<f64>>,
    /// Pinned vertices whose neighborhood a graph ingest dirtied since the
    /// last rewarm.  Serving one is a typed error, never a silent answer
    /// against the pre-ingest graph.
    stale: HashSet<usize>,
}

impl HotVertexTier {
    fn new(capacity: usize) -> Self {
        HotVertexTier { capacity, ..HotVertexTier::default() }
    }

    fn note(&mut self, vertex: usize) {
        if self.capacity > 0 {
            *self.counts.entry(vertex).or_insert(0) += 1;
        }
    }

    fn get(&self, vertex: usize) -> Option<&[f64]> {
        self.pinned.get(&vertex).map(Vec::as_slice)
    }

    /// Marks every pinned row among `dirty` stale; returns how many newly
    /// became stale.
    fn mark_stale(&mut self, dirty: &[usize]) -> usize {
        let mut marked = 0;
        for &v in dirty {
            if self.pinned.contains_key(&v) && self.stale.insert(v) {
                marked += 1;
            }
        }
        marked
    }

    fn is_stale(&self, vertex: usize) -> bool {
        self.stale.contains(&vertex)
    }

    /// Re-pins the `capacity` hottest vertices.  Ties break by vertex id so
    /// the pinned set is a pure function of the counts — rewarming is
    /// deterministic.
    fn rewarm(&mut self, features: &DenseMatrix) {
        if self.capacity == 0 {
            return;
        }
        let mut by_freq: Vec<(u64, usize)> = self.counts.iter().map(|(&v, &c)| (c, v)).collect();
        by_freq.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        self.pinned.clear();
        // Rewarming repins from the current feature matrix against the
        // current graph, so staleness is discharged wholesale.
        self.stale.clear();
        for &(_, v) in by_freq.iter().take(self.capacity) {
            self.pinned.insert(v, features.row(v).to_vec());
        }
    }

    fn resident(&self) -> usize {
        self.pinned.len()
    }
}

/// A serving session: a frozen [`ModelSnapshot`], the graph it serves, and
/// the coalescing / caching / admission machinery around them.
///
/// See the [module docs](self) for the request path and the example.
#[derive(Debug)]
pub struct ServingSession<S> {
    dataset: Arc<Dataset>,
    sampler: S,
    snapshot: ModelSnapshot,
    config: ServingConfig,
    cache: Option<FeatureCache>,
    hot: HotVertexTier,
    stats: ServeStats,
    comm: CommStats,
    next_request_id: u64,
    batches_since_warm: usize,
    /// Monotone graph version: bumped by [`ServingSession::notify_ingest`].
    graph_version: u64,
    /// Graph version the hot tier was last (re)warmed against.
    hot_pinned_version: u64,
}

impl<S: Sampler> ServingSession<S> {
    /// Opens a serving session for `snapshot` against `dataset`, validating
    /// that the three shapes that must agree do: the feature dimension, the
    /// vertex count, and the sampler's layer depth.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShapeMismatch`] naming the first disagreeing
    /// dimension, or [`ServeError::Gnn`] if the dataset has no feature
    /// matrix.
    pub fn new(
        dataset: impl Into<Arc<Dataset>>,
        sampler: S,
        snapshot: ModelSnapshot,
        config: ServingConfig,
    ) -> ServeResult<Self> {
        let dataset = dataset.into();
        let features = dataset.graph.features().ok_or_else(|| {
            GnnError::InvalidConfig("serving needs a dataset with features".into())
        })?;
        if features.cols() != snapshot.feature_dim() {
            return Err(ServeError::ShapeMismatch {
                what: "feature_dim",
                model: snapshot.feature_dim(),
                graph: features.cols(),
            });
        }
        let num_vertices = dataset.graph.adjacency().rows();
        if num_vertices != snapshot.num_vertices() {
            return Err(ServeError::ShapeMismatch {
                what: "num_vertices",
                model: snapshot.num_vertices(),
                graph: num_vertices,
            });
        }
        if sampler.num_layers() != snapshot.num_layers() {
            return Err(ServeError::ShapeMismatch {
                what: "num_layers",
                model: snapshot.num_layers(),
                graph: sampler.num_layers(),
            });
        }
        let cache = config
            .feature_cache
            .is_enabled()
            .then(|| FeatureCache::new(config.feature_cache, snapshot.feature_dim()));
        let hot = HotVertexTier::new(config.hot_capacity);
        Ok(ServingSession {
            dataset,
            sampler,
            snapshot,
            config,
            cache,
            hot,
            stats: ServeStats::default(),
            comm: CommStats::default(),
            next_request_id: 0,
            batches_since_warm: 0,
            graph_version: 0,
            hot_pinned_version: 0,
        })
    }

    /// Tells the session a graph ingest landed, dirtying `dirty` vertices
    /// (typically [`dmbs_graph::IngestReceipt::dirty`]).  Bumps the graph
    /// version and marks every pinned hot-tier row among `dirty` stale:
    /// serving one afterwards is a typed
    /// [`GnnError::StalePlan`] until [`ServingSession::rewarm`] (or the
    /// periodic rewarm) repins against the post-ingest graph.  Un-pinned
    /// rows are untouched — invalidation is precise.  Returns how many
    /// pinned rows became stale.
    pub fn notify_ingest(&mut self, dirty: &[usize]) -> usize {
        self.graph_version += 1;
        self.hot.mark_stale(dirty)
    }

    /// The graph version the session has been notified up to.
    pub fn graph_version(&self) -> u64 {
        self.graph_version
    }

    /// Explicitly re-pins the hot tier from the running frequency counts,
    /// discharging any ingest staleness.
    pub fn rewarm(&mut self) {
        let features = self.dataset.graph.features().expect("validated at new()");
        self.hot.rewarm(features);
        self.hot_pinned_version = self.graph_version;
        self.batches_since_warm = 0;
    }

    /// The session's deterministic counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// The session's modeled α–β communication books so far (fetch messages
    /// amortized over their micro-bulks, hot-tier savings as cache hits).
    pub fn comm_stats(&self) -> CommStats {
        self.comm
    }

    /// Rows currently pinned in the hot tier.
    pub fn hot_resident(&self) -> usize {
        self.hot.resident()
    }

    /// Checks the admission bound against `pending` already-queued requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AdmissionRejected`] when the queue is full.
    pub fn check_admission(&self, pending: usize) -> ServeResult<()> {
        if pending >= self.config.queue_depth {
            return Err(ServeError::AdmissionRejected {
                queue_depth: pending,
                limit: self.config.queue_depth,
            });
        }
        Ok(())
    }

    /// Checks a request's queueing delay against the timeout budget.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::TimeoutExceeded`] when `waited` exceeds it.
    pub fn check_timeout(&self, waited: f64) -> ServeResult<()> {
        if waited > self.config.timeout_budget {
            return Err(ServeError::TimeoutExceeded { waited, budget: self.config.timeout_budget });
        }
        Ok(())
    }

    /// Serves one request, assigning it the next session request id.
    ///
    /// # Errors
    ///
    /// Those of [`ServingSession::serve`].
    pub fn serve_one(&mut self, vertex: usize) -> ServeResult<ServeResponse> {
        let id = self.next_request_id;
        self.next_request_id += 1;
        let mut out = self.serve(&[ServeRequest { id, vertex }])?;
        Ok(out.pop().expect("one request yields one response"))
    }

    /// Serves one micro-bulk of already-admitted requests: per-request
    /// seeded sampling, one deduplicated hot-tier/cache-aware feature
    /// gather, one amortized fetch message, and a forward pass per request.
    ///
    /// Responses come back in request order.  Because every request samples
    /// from its own stream, the responses are bit-for-bit what each request
    /// would get served alone (the byte-identity pinned by
    /// `tests/serving_pipeline.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::VertexOutOfRange`] for an unknown vertex, a
    /// wrapped [`GnnError::StalePlan`] when the gather touches a hot-tier
    /// row dirtied by [`ServingSession::notify_ingest`], and propagates
    /// sampling / model errors.
    pub fn serve(&mut self, requests: &[ServeRequest]) -> ServeResult<Vec<ServeResponse>> {
        Ok(self.serve_inner(requests)?.0)
    }

    /// Deterministic modeled service seconds of one micro-bulk (see
    /// [`ServingConfig`]).
    fn modeled_service_seconds(&self, k: usize, edges: usize, charged_words: usize) -> f64 {
        let c = &self.config;
        let fetch = if charged_words > 0 { c.cost.message_cost(charged_words) } else { 0.0 };
        c.seconds_per_batch
            + k as f64 * c.seconds_per_request
            + edges as f64 * c.seconds_per_edge
            + fetch
    }

    fn serve_inner(&mut self, requests: &[ServeRequest]) -> ServeResult<(Vec<ServeResponse>, f64)> {
        if requests.is_empty() {
            return Ok((Vec::new(), 0.0));
        }
        let num_vertices = self.snapshot.num_vertices();
        for r in requests {
            if r.vertex >= num_vertices {
                return Err(ServeError::VertexOutOfRange { vertex: r.vertex, limit: num_vertices });
            }
        }
        let features = self.dataset.graph.features().expect("validated at new()");
        let micro_reqs: Vec<MicroRequest> = requests
            .iter()
            .map(|r| MicroRequest {
                vertex: r.vertex,
                seed: request_stream_seed(self.config.seed, r.id),
            })
            .collect();
        let bulk_cfg = BulkSamplerConfig {
            batch_size: 1,
            bulk_size: 1,
            parallelism: self.config.parallelism,
            workspace_reuse: self.config.workspace_reuse,
        };
        let micro = sample_micro_bulk(
            &self.sampler,
            self.dataset.graph.adjacency(),
            &micro_reqs,
            &bulk_cfg,
        )?;

        // --- One feature gather for the whole micro-bulk: hot-tier rows are
        // free, everything else is charged to a single coalesced fetch.
        let fdim = self.snapshot.feature_dim();
        let union = micro.plan.unique_vertices();
        let mut union_feats = DenseMatrix::zeros(union.len(), fdim);
        let mut position: HashMap<usize, usize> = HashMap::with_capacity(union.len());
        let mut charged: Vec<usize> = Vec::new();
        let mut charged_slots: Vec<usize> = Vec::new();
        for (i, &v) in union.iter().enumerate() {
            position.insert(v, i);
            if self.hot.is_stale(v) {
                // A pinned row dirtied by an ingest: refuse with the same
                // typed staleness error the training tier's fetch plans use,
                // instead of answering against the pre-ingest graph.
                return Err(ServeError::Gnn(GnnError::StalePlan {
                    plan_version: self.hot_pinned_version,
                    graph_version: self.graph_version,
                }));
            }
            if let Some(row) = self.hot.get(v) {
                union_feats.row_mut(i).copy_from_slice(row);
                self.stats.hot_hits += 1;
                // A pinned row never enters the fetch message: one α–β row
                // (features + the request id word) stayed off the wire.
                self.comm.record_cache_hit(fdim + 1);
            } else {
                self.stats.hot_misses += 1;
                charged.push(v);
                charged_slots.push(i);
            }
        }
        if !charged.is_empty() {
            let fetched = match self.cache.as_mut() {
                Some(cache) => cache.gather_local(features, &charged)?,
                None => features.gather_rows(&charged)?,
            };
            for (j, &slot) in charged_slots.iter().enumerate() {
                union_feats.row_mut(slot).copy_from_slice(fetched.row(j));
            }
        }
        let k = requests.len();
        let charged_words = charged.len() * (fdim + 1);
        if charged_words > 0 {
            // One message for the whole micro-bulk: α paid once, amortized
            // over its k requests in the per-request books.
            self.comm.record_amortized(charged_words, &self.config.cost, k);
        }
        if let Some(cache) = self.cache.as_mut() {
            self.comm.merge(&cache.take_stats());
        }

        // --- Forward pass per request, inputs gathered from the union.
        let mut responses = Vec::with_capacity(k);
        for (request, sample) in requests.iter().zip(&micro.samples) {
            let inputs = sample.input_vertices();
            let mut input = DenseMatrix::zeros(inputs.len(), fdim);
            for (i, v) in inputs.iter().enumerate() {
                input.row_mut(i).copy_from_slice(union_feats.row(position[v]));
            }
            let (logits, _) = self.snapshot.model().forward(sample, &input)?;
            let prediction = logits.row_argmax()[0];
            responses.push(ServeResponse {
                id: request.id,
                vertex: request.vertex,
                prediction,
                logits: logits.row(0).to_vec(),
            });
        }

        // --- Bookkeeping: frequency statistics, periodic hot-tier rewarm,
        // workspace bound.
        for &v in union {
            self.hot.note(v);
        }
        self.stats.requests_offered += k;
        self.stats.requests_served += k;
        self.stats.batches += 1;
        self.batches_since_warm += 1;
        if self.config.hot_capacity > 0
            && self.batches_since_warm >= self.config.hot_warm_interval.max(1)
        {
            self.hot.rewarm(features);
            self.hot_pinned_version = self.graph_version;
            self.batches_since_warm = 0;
        }
        if self.config.workspace_reuse && self.config.workspace_byte_bound != usize::MAX {
            trim_thread_workspace(self.config.workspace_byte_bound);
        }
        let service = self.modeled_service_seconds(k, micro.total_edges(), charged_words);
        Ok((responses, service))
    }

    /// Replays an open-loop [`RequestTrace`] through the session's queueing
    /// machinery in deterministic virtual time.
    ///
    /// A single server drains a FIFO queue: a batch closes no earlier than
    /// its oldest request's arrival plus the coalescing window (window `0`
    /// serves strictly one request per batch), takes up to
    /// [`ServingConfig::max_micro_bulk`] queued requests, sheds the ones past
    /// their timeout budget, serves the rest as one micro-bulk and advances
    /// virtual time by the modeled service cost.  Arrivals finding the queue
    /// at [`ServingConfig::queue_depth`] are shed at their arrival instant.
    ///
    /// Everything in the returned report except `wall_s` is a pure function
    /// of the session seed, the configuration and the trace — two same-seed
    /// runs agree exactly (the determinism guard of
    /// `tests/serving_pipeline.rs`).
    ///
    /// # Errors
    ///
    /// Those of [`ServingSession::serve`] (trace vertices are validated per
    /// batch).
    pub fn run_trace(&mut self, trace: &RequestTrace) -> ServeResult<ServeReport> {
        let wall_start = std::time::Instant::now();
        let arrivals = &trace.arrivals;
        let mut latencies = Vec::with_capacity(arrivals.len());
        let mut queue: VecDeque<(u64, usize, f64)> = VecDeque::new();
        let mut next = 0usize;
        let mut free_at = 0.0f64;
        let mut makespan = 0.0f64;
        let window = self.config.coalesce_window;
        let cap = if window > 0.0 { self.config.max_micro_bulk.max(1) } else { 1 };

        while next < arrivals.len() || !queue.is_empty() {
            if queue.is_empty() {
                // An empty queue always admits the next arrival directly.
                let a = arrivals[next];
                queue.push_back((next as u64, a.vertex, a.at));
                next += 1;
            }
            let head_arrival = queue.front().expect("non-empty").2;
            let close = if window > 0.0 { head_arrival + window } else { head_arrival };
            let start = free_at.max(close);
            // Admit (or shed) every arrival up to the batch's start instant.
            while next < arrivals.len() && arrivals[next].at <= start {
                let a = arrivals[next];
                if self.check_admission(queue.len()).is_err() {
                    self.stats.requests_offered += 1;
                    self.stats.shed_admission += 1;
                } else {
                    queue.push_back((next as u64, a.vertex, a.at));
                }
                next += 1;
            }
            // Form the batch: FIFO order, timeout-shed entries do not count
            // against the micro-bulk capacity.
            let mut batch: Vec<(u64, usize, f64)> = Vec::new();
            while batch.len() < cap {
                let Some(entry) = queue.pop_front() else { break };
                if self.check_timeout(start - entry.2).is_err() {
                    self.stats.requests_offered += 1;
                    self.stats.shed_timeout += 1;
                    continue;
                }
                batch.push(entry);
            }
            if batch.is_empty() {
                free_at = free_at.max(start);
                makespan = makespan.max(start);
                continue;
            }
            let requests: Vec<ServeRequest> =
                batch.iter().map(|&(id, vertex, _)| ServeRequest { id, vertex }).collect();
            let (_, service) = self.serve_inner(&requests)?;
            let finish = start + service;
            for &(_, _, arrival) in &batch {
                latencies.push(finish - arrival);
            }
            free_at = finish;
            makespan = makespan.max(finish);
        }

        Ok(ServeReport {
            stats: self.stats,
            comm: self.comm,
            latencies,
            makespan,
            wall_s: wall_start.elapsed().as_secs_f64(),
        })
    }
}

/// One arrival of an open-loop request trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceArrival {
    /// Arrival instant in virtual seconds.
    pub at: f64,
    /// The requested seed vertex.
    pub vertex: usize,
}

/// A deterministic open-loop request trace: Poisson arrivals at a target
/// QPS, seed vertices drawn from a Zipf distribution (the "millions of
/// users" access pattern — a heavy head and a long tail).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The arrivals, in non-decreasing time order.
    pub arrivals: Vec<TraceArrival>,
}

impl RequestTrace {
    /// Generates `num_requests` arrivals: exponential interarrival times at
    /// rate `qps`, vertices Zipf-distributed with exponent `zipf_exponent`
    /// over `0..num_vertices` (vertex `0` hottest).  Fully determined by
    /// `seed`.
    pub fn open_loop(
        num_requests: usize,
        qps: f64,
        zipf_exponent: f64,
        num_vertices: usize,
        seed: u64,
    ) -> Self {
        assert!(num_vertices > 0, "a trace needs a non-empty vertex universe");
        assert!(qps > 0.0, "a trace needs a positive arrival rate");
        // Inverse-CDF table of the (truncated) Zipf distribution.
        let mut cumulative = Vec::with_capacity(num_vertices);
        let mut total = 0.0f64;
        for i in 0..num_vertices {
            total += 1.0 / ((i + 1) as f64).powf(zipf_exponent);
            cumulative.push(total);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut at = 0.0f64;
        let mut arrivals = Vec::with_capacity(num_requests);
        for _ in 0..num_requests {
            let u: f64 = rng.gen();
            // Exponential interarrival: -ln(1-u)/λ, u ∈ [0, 1).
            at += -(1.0 - u).ln() / qps;
            let z: f64 = rng.gen::<f64>() * total;
            let vertex = cumulative.partition_point(|&c| c < z).min(num_vertices - 1);
            arrivals.push(TraceArrival { at, vertex });
        }
        RequestTrace { arrivals }
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the trace holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// What a [`RequestTrace`] replay produced: the session counters, the
/// modeled communication books, and the per-served-request virtual-time
/// latencies.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Deterministic serving counters (cumulative for the session).
    pub stats: ServeStats,
    /// Modeled α–β communication books (cumulative for the session).
    pub comm: CommStats,
    /// Virtual-time latency of every served request, in service order.
    /// Deterministic — these feed the bench's p50/p99/p999.
    pub latencies: Vec<f64>,
    /// Virtual time at which the last batch finished.
    pub makespan: f64,
    /// Measured wall seconds of the replay (the only non-deterministic
    /// field).
    pub wall_s: f64,
}

impl ServeReport {
    /// Served requests per virtual second over the whole replay.
    pub fn sustained_qps(&self) -> f64 {
        if self.makespan > 0.0 {
            self.stats.requests_served as f64 / self.makespan
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TrainingSession;
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    use dmbs_sampling::{GraphSageSampler, LocalBackend};

    fn trained_setup() -> (Arc<Dataset>, GraphSageSampler, ModelSnapshot) {
        let mut cfg = DatasetConfig::products_like(6); // 64 vertices
        cfg.feature_dim = 6;
        cfg.num_classes = 3;
        let dataset = Arc::new(build_dataset(&cfg, &mut StdRng::seed_from_u64(9)).unwrap());
        let sampler = GraphSageSampler::new(vec![3, 3]).with_self_loops();
        let session = TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(sampler.clone())
            .backend(LocalBackend::new(BulkSamplerConfig::new(8, 2)).unwrap())
            .epochs(1)
            .without_evaluation()
            .build()
            .unwrap();
        let (_, snapshot) = session.train_and_export().unwrap();
        (dataset, sampler, snapshot)
    }

    #[test]
    fn serve_answers_requests_and_counts() {
        let (dataset, sampler, snapshot) = trained_setup();
        let mut s =
            ServingSession::new(dataset, sampler, snapshot, ServingConfig::default()).unwrap();
        let reqs = [ServeRequest { id: 0, vertex: 3 }, ServeRequest { id: 1, vertex: 17 }];
        let out = s.serve(&reqs).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].vertex, 3);
        assert_eq!(out[1].id, 1);
        assert!(out.iter().all(|r| r.prediction < 3 && r.logits.len() == 3));
        assert_eq!(s.stats().requests_served, 2);
        assert_eq!(s.stats().batches, 1);
        assert!((s.stats().coalescing_factor() - 2.0).abs() < 1e-12);
        // The micro-bulk was billed as one message amortized over 2 requests.
        assert_eq!(s.comm_stats().messages, 1);
        assert_eq!(s.comm_stats().amortized_requests, 2);
        // serve_one assigns fresh ids.
        let one = s.serve_one(3).unwrap();
        assert_eq!(one.id, 0);
        assert_eq!(s.stats().batches, 2);
    }

    #[test]
    fn hot_tier_warms_and_serves_rows() {
        let (dataset, sampler, snapshot) = trained_setup();
        let config =
            ServingConfig { hot_capacity: 64, hot_warm_interval: 1, ..ServingConfig::default() };
        let mut s = ServingSession::new(dataset, sampler, snapshot, config).unwrap();
        let cold = s.serve_one(5).unwrap();
        assert_eq!(s.stats().hot_hits, 0);
        assert!(s.hot_resident() > 0, "rewarm after the first batch");
        // The same request id/vertex replayed now hits the pinned tier and
        // still answers byte-identically.
        let warm = s.serve(&[ServeRequest { id: 0, vertex: 5 }]).unwrap();
        assert!(s.stats().hot_hits > 0);
        assert!(s.comm_stats().words_saved > 0);
        let a: Vec<u64> = cold.logits.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u64> = warm[0].logits.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ingest_staleness_is_typed_and_rewarm_discharges_it() {
        let (dataset, sampler, snapshot) = trained_setup();
        let config =
            ServingConfig { hot_capacity: 64, hot_warm_interval: 1000, ..ServingConfig::default() };
        let mut s = ServingSession::new(dataset, sampler, snapshot, config).unwrap();
        // Warm the tier on a request, then explicitly repin so vertex 5's
        // frontier is resident.
        s.serve_one(5).unwrap();
        s.rewarm();
        assert!(s.hot_resident() > 0);
        assert_eq!(s.graph_version(), 0);
        // Dirty every pinned vertex: an ingest touched their neighborhoods.
        let all: Vec<usize> = (0..64).collect();
        let marked = s.notify_ingest(&all);
        assert_eq!(marked, s.hot_resident());
        assert_eq!(s.graph_version(), 1);
        // Serving a request whose gather hits a stale pinned row is the
        // typed staleness error, not a silent pre-ingest answer.
        let err = s.serve(&[ServeRequest { id: 7, vertex: 5 }]).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Gnn(GnnError::StalePlan { plan_version: 0, graph_version: 1 })
        ));
        // Dirtying again is idempotent on already-stale rows.
        assert_eq!(s.notify_ingest(&all), 0);
        // Rewarm repins against the current graph and service resumes.
        s.rewarm();
        let out = s.serve(&[ServeRequest { id: 7, vertex: 5 }]).unwrap();
        assert_eq!(out[0].vertex, 5);
    }

    #[test]
    fn admission_and_timeout_checks_are_typed() {
        let (dataset, sampler, snapshot) = trained_setup();
        let config =
            ServingConfig { queue_depth: 2, timeout_budget: 0.5, ..ServingConfig::default() };
        let s = ServingSession::new(dataset, sampler, snapshot, config).unwrap();
        assert!(s.check_admission(1).is_ok());
        assert!(matches!(
            s.check_admission(2),
            Err(ServeError::AdmissionRejected { queue_depth: 2, limit: 2 })
        ));
        assert!(s.check_timeout(0.5).is_ok());
        assert!(matches!(s.check_timeout(0.6), Err(ServeError::TimeoutExceeded { .. })));
    }

    #[test]
    fn trace_is_deterministic_and_zipf_skewed() {
        let t1 = RequestTrace::open_loop(500, 1000.0, 1.1, 40, 13);
        let t2 = RequestTrace::open_loop(500, 1000.0, 1.1, 40, 13);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 500);
        assert!(!t1.is_empty());
        // Arrivals are time-ordered.
        assert!(t1.arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        // The head of the Zipf distribution dominates the tail.
        let head = t1.arrivals.iter().filter(|a| a.vertex < 4).count();
        let tail = t1.arrivals.iter().filter(|a| a.vertex >= 36).count();
        assert!(head > 3 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn run_trace_serves_sheds_and_reports() {
        let (dataset, sampler, snapshot) = trained_setup();
        // Overload a coalescing-disabled server so both shed paths engage.
        let config = ServingConfig {
            coalesce_window: 0.0,
            queue_depth: 4,
            timeout_budget: 2.0e-3,
            ..ServingConfig::default()
        };
        let mut s = ServingSession::new(dataset, sampler, snapshot, config).unwrap();
        let trace = RequestTrace::open_loop(300, 20_000.0, 1.1, 50, 3);
        let report = s.run_trace(&trace).unwrap();
        let st = report.stats;
        assert_eq!(st.requests_offered, 300);
        assert_eq!(st.requests_served + st.shed_total(), 300);
        assert!(st.shed_admission > 0, "overload must shed at admission");
        assert_eq!(report.latencies.len(), st.requests_served);
        assert!(report.makespan > 0.0);
        assert!(report.sustained_qps() > 0.0);
        // window = 0 means no coalescing: exactly one request per batch.
        assert!((st.coalescing_factor() - 1.0).abs() < 1e-12);
        // Every served latency respects the timeout budget plus service.
        let max_latency = report.latencies.iter().cloned().fold(0.0, f64::max);
        assert!(max_latency < config.timeout_budget + 0.1);
    }

    #[test]
    fn shape_mismatches_are_rejected_up_front() {
        let (dataset, sampler, snapshot) = trained_setup();
        // Wrong sampler depth.
        let shallow = GraphSageSampler::new(vec![3]).with_self_loops();
        let err = ServingSession::new(
            Arc::clone(&dataset),
            shallow,
            snapshot.clone(),
            ServingConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { what: "num_layers", .. }));
        // Wrong graph.
        let mut other_cfg = DatasetConfig::products_like(5); // 32 vertices
        other_cfg.feature_dim = 6;
        other_cfg.num_classes = 3;
        let other = build_dataset(&other_cfg, &mut StdRng::seed_from_u64(1)).unwrap();
        let err =
            ServingSession::new(other, sampler, snapshot, ServingConfig::default()).unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { what: "num_vertices", .. }));
    }

    #[test]
    fn errors_display_and_convert() {
        let e = ServeError::AdmissionRejected { queue_depth: 9, limit: 8 };
        assert!(e.to_string().contains("queue holds 9"));
        let e = ServeError::TimeoutExceeded { waited: 0.2, budget: 0.1 };
        assert!(e.to_string().contains("budget"));
        let e = ServeError::VertexOutOfRange { vertex: 7, limit: 5 };
        assert!(e.to_string().contains("vertex 7"));
        let e = ServeError::ShapeMismatch { what: "feature_dim", model: 8, graph: 6 };
        assert!(e.to_string().contains("feature_dim"));
        let wrapped: ServeError = GnnError::InvalidConfig("x".into()).into();
        assert!(wrapped.source().is_some());
        let via_sampling: ServeError = SamplingError::InvalidConfig("y".into()).into();
        assert!(matches!(via_sampling, ServeError::Gnn(GnnError::Sampling(_))));
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The dmbs workspace only uses `#[derive(Serialize, Deserialize)]` as
//! forward-looking markers — nothing serializes anything yet, and no bounds
//! reference these traits.  This shim provides the two marker traits and
//! re-exports derive macros (from the sibling `serde_derive` shim) that
//! implement them, so the seed sources compile unchanged without network
//! access.

#![warn(missing_docs)]

/// Marker replacement for `serde::Serialize`.
pub trait Serialize {}

/// Marker replacement for `serde::Deserialize`.  The lifetime mirrors the
/// real trait so `#[derive(Deserialize)]` expansions stay source-compatible.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

//! Prefix sums.
//!
//! Inverse transform sampling (ITS) — the distribution-sampling primitive used
//! by the paper (§2.3) — runs a prefix sum over each probability row and then
//! binary-searches uniform random numbers into it.  These helpers implement
//! the inclusive/exclusive scans and the search.

/// Inclusive prefix sum of `values`: `out[i] = values[0] + ... + values[i]`.
///
/// # Example
///
/// ```
/// let scan = dmbs_matrix::prefix::inclusive_scan(&[1.0, 2.0, 3.0]);
/// assert_eq!(scan, vec![1.0, 3.0, 6.0]);
/// ```
pub fn inclusive_scan(values: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0.0;
    for &v in values {
        acc += v;
        out.push(acc);
    }
    out
}

/// Exclusive prefix sum of `values`: `out[i] = values[0] + ... + values[i-1]`,
/// with `out[0] = 0`.
///
/// # Example
///
/// ```
/// let scan = dmbs_matrix::prefix::exclusive_scan(&[1.0, 2.0, 3.0]);
/// assert_eq!(scan, vec![0.0, 1.0, 3.0]);
/// ```
pub fn exclusive_scan(values: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0.0;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    out
}

/// Exclusive prefix sum over `usize` counts, returning a vector one longer
/// than the input whose last element is the total.  This is the standard
/// "counts to offsets" transform used when building CSR structures.
///
/// # Example
///
/// ```
/// let offsets = dmbs_matrix::prefix::counts_to_offsets(&[2, 0, 3]);
/// assert_eq!(offsets, vec![0, 2, 2, 5]);
/// ```
pub fn counts_to_offsets(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

/// Binary search for the first index `i` such that `scan[i] >= target`, where
/// `scan` is a non-decreasing inclusive prefix sum.  Returns `scan.len() - 1`
/// when `target` exceeds the total mass (guards against floating point
/// round-off at the top of the range).
///
/// # Panics
///
/// Panics if `scan` is empty.
pub fn upper_bound(scan: &[f64], target: f64) -> usize {
    assert!(!scan.is_empty(), "upper_bound requires a non-empty scan");
    let mut lo = 0usize;
    let mut hi = scan.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if scan[mid] >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo.min(scan.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn inclusive_basic() {
        assert_eq!(inclusive_scan(&[]), Vec::<f64>::new());
        assert_eq!(inclusive_scan(&[5.0]), vec![5.0]);
        assert_eq!(inclusive_scan(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn exclusive_basic() {
        assert_eq!(exclusive_scan(&[]), Vec::<f64>::new());
        assert_eq!(exclusive_scan(&[5.0]), vec![0.0]);
        assert_eq!(exclusive_scan(&[1.0, 2.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn counts_to_offsets_basic() {
        assert_eq!(counts_to_offsets(&[]), vec![0]);
        assert_eq!(counts_to_offsets(&[3]), vec![0, 3]);
        assert_eq!(counts_to_offsets(&[1, 2, 3]), vec![0, 1, 3, 6]);
    }

    #[test]
    fn upper_bound_selects_bucket() {
        let scan = inclusive_scan(&[0.2, 0.3, 0.5]);
        assert_eq!(upper_bound(&scan, 0.1), 0);
        assert_eq!(upper_bound(&scan, 0.2), 0);
        assert_eq!(upper_bound(&scan, 0.21), 1);
        assert_eq!(upper_bound(&scan, 0.5), 1);
        assert_eq!(upper_bound(&scan, 0.99), 2);
        // Above total mass clamps to last bucket.
        assert_eq!(upper_bound(&scan, 1.5), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn upper_bound_empty_panics() {
        upper_bound(&[], 0.5);
    }

    proptest! {
        #[test]
        fn inclusive_last_is_total(values in proptest::collection::vec(0.0f64..10.0, 1..100)) {
            let scan = inclusive_scan(&values);
            let total: f64 = values.iter().sum();
            prop_assert!((scan[scan.len() - 1] - total).abs() < 1e-9);
        }

        #[test]
        fn scans_are_consistent(values in proptest::collection::vec(0.0f64..10.0, 1..100)) {
            let inc = inclusive_scan(&values);
            let exc = exclusive_scan(&values);
            for i in 0..values.len() {
                prop_assert!((inc[i] - (exc[i] + values[i])).abs() < 1e-9);
            }
        }

        #[test]
        fn upper_bound_is_monotone(values in proptest::collection::vec(0.01f64..10.0, 1..50),
                                   t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
            let scan = inclusive_scan(&values);
            let total = scan[scan.len() - 1];
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(upper_bound(&scan, lo * total) <= upper_bound(&scan, hi * total));
        }

        #[test]
        fn counts_offsets_monotone(counts in proptest::collection::vec(0usize..20, 0..50)) {
            let offsets = counts_to_offsets(&counts);
            prop_assert_eq!(offsets.len(), counts.len() + 1);
            for w in offsets.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            prop_assert_eq!(*offsets.last().unwrap(), counts.iter().sum::<usize>());
        }
    }
}

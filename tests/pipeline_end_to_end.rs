//! Cross-crate integration tests for the end-to-end training pipeline driven
//! through `TrainingSession`: learning above chance level, matching accuracy
//! between bulk matrix sampling and per-vertex sampling, and consistent phase
//! accounting in the distributed pipeline.

mod common;

use dmbs::gnn::TrainingSession;
use dmbs::graph::datasets::Dataset;
use dmbs::sampling::baseline::PerVertexSageSampler;
use dmbs::sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, LocalBackend, ReplicatedBackend, Sampler,
};

fn dataset(seed: u64) -> Dataset {
    common::products_dataset(8, 16, 4, 0.5, Some(0.6), seed) // 256 vertices
}

fn local_session<S: Sampler>(ds: Dataset, sampler: S) -> TrainingSession<S, LocalBackend> {
    TrainingSession::builder()
        .dataset(ds)
        .sampler(sampler)
        .backend(LocalBackend::new(BulkSamplerConfig::new(32, 4)).unwrap())
        .hidden_dim(24)
        .learning_rate(0.05)
        .epochs(4)
        .seed(11)
        .build()
        .unwrap()
}

#[test]
fn single_device_training_learns_above_chance() {
    let ds = dataset(1);
    let chance = 1.0 / ds.graph.num_classes() as f64;
    let session = local_session(ds, GraphSageSampler::new(vec![8, 4]).with_self_loops());
    let report = session.train().unwrap();
    let accuracy = report.test_accuracy.unwrap();
    assert!(accuracy > chance * 1.5, "accuracy {accuracy} vs chance {chance}");
    // Loss decreased.
    assert!(report.epochs.last().unwrap().mean_loss < report.epochs[0].mean_loss);
}

#[test]
fn bulk_matrix_sampling_does_not_hurt_accuracy() {
    // The §8.1.3 claim, end to end across crates: swapping the sampler inside
    // the same session shape leaves accuracy unchanged.
    let ds = dataset(2);
    let matrix = local_session(ds.clone(), GraphSageSampler::new(vec![8, 4]).with_self_loops())
        .train()
        .unwrap();
    let baseline =
        local_session(ds, PerVertexSageSampler::new(vec![8, 4]).with_self_loops()).train().unwrap();
    let a = matrix.test_accuracy.unwrap();
    let b = baseline.test_accuracy.unwrap();
    assert!((a - b).abs() < 0.25, "matrix sampling accuracy {a} vs per-vertex {b}");
}

#[test]
fn distributed_pipeline_phases_and_scaling_bookkeeping() {
    let ds = dataset(3);
    for (p, c) in [(2usize, 2usize), (4, 2)] {
        let report = TrainingSession::builder()
            .dataset(ds.clone())
            .sampler(GraphSageSampler::new(vec![8, 4]).with_self_loops())
            .backend(
                ReplicatedBackend::new(DistConfig::new(p, c, BulkSamplerConfig::new(32, 4)))
                    .unwrap(),
            )
            .hidden_dim(24)
            .learning_rate(0.05)
            .epochs(2)
            .seed(11)
            .without_evaluation()
            .build()
            .unwrap()
            .train()
            .unwrap();
        assert_eq!(report.epochs.len(), 2);
        for e in &report.epochs {
            // Every phase of Figure 3 is accounted for.
            assert!(e.sampling_time() > 0.0, "p={p}");
            assert!(e.feature_fetch_time() > 0.0, "p={p}");
            assert!(e.propagation_time() > 0.0, "p={p}");
            assert!(e.total_time() >= e.sampling_time() + e.propagation_time());
            // Gradient all-reduce and feature fetching moved data.
            assert!(e.comm.messages > 0, "p={p}");
            assert!(e.mean_loss.is_finite());
        }
    }
}

#[test]
fn distributed_and_single_device_losses_are_comparable() {
    // Data-parallel training over simulated ranks should optimize the same
    // objective: final epoch losses must be in the same ballpark.
    let ds = dataset(4);
    let sampler = GraphSageSampler::new(vec![8, 4]).with_self_loops();
    let single = TrainingSession::builder()
        .dataset(ds.clone())
        .sampler(sampler.clone())
        .backend(LocalBackend::new(BulkSamplerConfig::new(32, 4)).unwrap())
        .hidden_dim(24)
        .learning_rate(0.05)
        .epochs(3)
        .seed(11)
        .build()
        .unwrap()
        .train()
        .unwrap();
    let distributed = TrainingSession::builder()
        .dataset(ds)
        .sampler(sampler)
        .backend(
            ReplicatedBackend::new(DistConfig::new(4, 2, BulkSamplerConfig::new(32, 4))).unwrap(),
        )
        .hidden_dim(24)
        .learning_rate(0.05)
        .epochs(3)
        .seed(11)
        .without_evaluation()
        .build()
        .unwrap()
        .train()
        .unwrap();
    let s = single.epochs.last().unwrap().mean_loss;
    let d = distributed.epochs.last().unwrap().mean_loss;
    assert!((s - d).abs() < 1.0, "single-device final loss {s} vs distributed {d} diverged");
}

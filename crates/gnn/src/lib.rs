//! # dmbs-gnn
//!
//! GNN training substrate for the `dmbs` reproduction of *Distributed
//! Matrix-Based Sampling for Graph Neural Network Training* (MLSys 2024).
//!
//! The paper wraps its bulk sampling step in an end-to-end pipeline (§6,
//! Figure 3) with three phases per epoch: (1) bulk sampling, (2) feature
//! fetching via all-to-allv across process columns of a 1.5D-partitioned
//! feature matrix, and (3) forward/backward propagation of a GraphSAGE model.
//! This crate provides those pieces:
//!
//! * [`layers`] — a mean-aggregator GraphSAGE layer and a linear classifier,
//!   both with explicit forward/backward passes (no autograd dependency);
//! * [`loss`] — softmax cross-entropy with gradient;
//! * [`optim`] — SGD and Adam optimizers;
//! * [`model`] — a multi-layer [`SageModel`] that trains on
//!   the [`MinibatchSample`](dmbs_sampling::MinibatchSample)s produced by the
//!   sampling crate;
//! * [`features`] — the 1.5D-partitioned feature store with all-to-allv
//!   fetching (§6.2), including the no-replication variant of Figure 6, plus
//!   the communication-avoiding [`FeatureCache`] (epoch-pinned prefetch of a
//!   [`FetchPlan`](dmbs_sampling::FetchPlan), or byte-budgeted LRU) behind
//!   the `TrainingSession::builder().feature_cache(...)` knob;
//! * [`trainer`] — single-device and distributed training drivers that
//!   produce the per-phase epoch breakdowns reported in Figures 4 and 6.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activations;
pub mod error;
pub mod features;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod serve;
pub mod session;
pub mod trainer;
pub mod worker;

pub use error::GnnError;
pub use features::{
    ensure_plan_fresh, FeatureCache, FeatureCacheConfig, FeatureStore, InvalidationPolicy,
    PendingFetch, PendingPrefetch,
};
pub use model::SageModel;
pub use serve::{
    ModelSnapshot, RequestTrace, ServeError, ServeReport, ServeRequest, ServeResponse, ServeResult,
    ServeStats, ServingConfig, ServingSession, TraceArrival,
};
pub use session::{
    IngestEvent, Minibatch, MinibatchStream, Session, SessionBuilder, TrainingSession,
};
pub use trainer::{EpochStats, TrainingConfig, TrainingReport};

/// The cost-model-driven auto-tuner behind [`SessionBuilder::auto`],
/// re-exported so session users can inspect [`dmbs_comm::tune::TuningChoice`]
/// and the scored grid without a direct `dmbs_comm` dependency.
pub use dmbs_comm::tune::{CacheKnob, ScoredChoice, TuningChoice, TuningOutcome};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, GnnError>;

//! End-to-end tests for the low-latency serving tier.
//!
//! The coalescing contract is the serving twin of the training pipeline's
//! bulk contract: a micro-bulk of `k` requests must produce **bit-for-bit**
//! the same per-request predictions as the same `k` requests served alone,
//! for every batch size and every feature-cache mode — coalescing, the
//! hot-vertex tier and the cache are pure work avoidance, never
//! approximation.  On top of that ride the typed admission/timeout errors
//! and the open-loop replay determinism the CI serve gate pins.

mod common;

use dmbs::gnn::{
    FeatureCacheConfig, ModelSnapshot, RequestTrace, ServeError, ServeRequest, ServingConfig,
    ServingSession, TrainingSession,
};
use dmbs::graph::datasets::{build_dataset, Dataset, DatasetConfig};
use dmbs::sampling::{BulkSamplerConfig, GraphSageSampler, LocalBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds a small dataset and trains a 2-layer snapshot on it once.
fn trained(seed: u64) -> (Arc<Dataset>, ModelSnapshot) {
    let dataset = common::arc_products_dataset(6, 8, 4, 0.5, None, seed); // 64 vertices
    let session = TrainingSession::builder()
        .dataset(Arc::clone(&dataset))
        .sampler(GraphSageSampler::new(vec![3, 3]).with_self_loops())
        .backend(LocalBackend::new(BulkSamplerConfig::new(8, 2)).unwrap())
        .hidden_dim(8)
        .learning_rate(0.05)
        .epochs(1)
        .seed(13)
        .without_evaluation()
        .build()
        .unwrap();
    let (_, snapshot) = session.train_and_export().unwrap();
    (dataset, snapshot)
}

fn session(
    dataset: &Arc<Dataset>,
    snapshot: &ModelSnapshot,
    config: ServingConfig,
) -> ServingSession<GraphSageSampler> {
    ServingSession::new(
        Arc::clone(dataset),
        GraphSageSampler::new(vec![3, 3]).with_self_loops(),
        snapshot.clone(),
        config,
    )
    .unwrap()
}

/// The tentpole contract: a coalesced micro-bulk answers every request
/// bit-for-bit identically to serving the same requests one at a time,
/// across batch sizes and cache modes.  Per-request sampling streams are
/// keyed by (session seed, request id), so a request's companions — and the
/// hot tier or cache state it happens to hit — can never leak into its
/// prediction.
#[test]
fn micro_bulk_is_byte_identical_to_singletons() {
    let (dataset, snapshot) = trained(3);
    let n = dataset.num_vertices();
    for cache in common::cache_modes(1 << 14) {
        for k in [1usize, 2, 4, 8] {
            let config = ServingConfig {
                max_micro_bulk: k.max(1),
                feature_cache: cache,
                seed: 77,
                ..ServingConfig::default()
            };
            let requests: Vec<ServeRequest> =
                (0..k).map(|i| ServeRequest { id: i as u64, vertex: (i * 11 + 3) % n }).collect();

            let mut bulk = session(&dataset, &snapshot, config);
            let coalesced = bulk.serve(&requests).unwrap();

            let mut solo = session(&dataset, &snapshot, config);
            for (req, got) in requests.iter().zip(&coalesced) {
                let alone = solo.serve(std::slice::from_ref(req)).unwrap();
                assert_eq!(alone.len(), 1);
                let alone = &alone[0];
                assert_eq!(got.id, alone.id);
                assert_eq!(got.vertex, alone.vertex);
                assert_eq!(
                    got.prediction, alone.prediction,
                    "cache {cache:?} k = {k}: prediction diverged for request {}",
                    req.id
                );
                assert_eq!(got.logits.len(), alone.logits.len());
                for (a, b) in got.logits.iter().zip(&alone.logits) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "cache {cache:?} k = {k}: logits diverged for request {}",
                        req.id
                    );
                }
            }
            // The micro-bulk did the same work in fewer batches.
            assert_eq!(bulk.stats().requests_served, k);
            assert_eq!(bulk.stats().batches, 1);
            assert_eq!(solo.stats().batches, k);
        }
    }
}

/// A warm hot tier and a warm cache are invisible in the answers: replaying
/// the same request ids against a session that has already served (and
/// re-pinned its hot tier) returns bit-identical logits.
#[test]
fn warm_state_never_changes_answers() {
    let (dataset, snapshot) = trained(5);
    let n = dataset.num_vertices();
    let config = ServingConfig {
        hot_capacity: 16,
        hot_warm_interval: 1, // re-warm after every batch
        feature_cache: FeatureCacheConfig::EpochPinned,
        seed: 9,
        ..ServingConfig::default()
    };
    let requests: Vec<ServeRequest> =
        (0..6u64).map(|id| ServeRequest { id, vertex: (id as usize * 7) % n }).collect();

    let mut cold = session(&dataset, &snapshot, config);
    let first = cold.serve(&requests).unwrap();
    // Several more batches to warm the tier and the cache…
    for _ in 0..4 {
        cold.serve(&requests).unwrap();
    }
    assert!(cold.hot_resident() > 0, "hot tier never warmed");
    let warm = cold.serve(&requests).unwrap();
    assert!(cold.stats().hot_hits > 0, "warm replay hit nothing");
    for (a, b) in first.iter().zip(&warm) {
        assert_eq!(a.prediction, b.prediction);
        for (x, y) in a.logits.iter().zip(&b.logits) {
            assert_eq!(x.to_bits(), y.to_bits(), "warm state changed an answer");
        }
    }
}

/// Every rejection is a typed [`ServeError`], mirrored on `GnnError`'s
/// negative paths: admission control, timeout budget, vertex range and
/// model/graph shape checks each fail with their own variant.
#[test]
fn rejections_are_typed() {
    let (dataset, snapshot) = trained(7);
    let n = dataset.num_vertices();
    let config =
        ServingConfig { queue_depth: 2, timeout_budget: 1.0e-3, ..ServingConfig::default() };
    let mut s = session(&dataset, &snapshot, config);

    match s.check_admission(2) {
        Err(ServeError::AdmissionRejected { queue_depth, limit }) => {
            assert_eq!((queue_depth, limit), (2, 2));
        }
        other => panic!("expected AdmissionRejected, got {other:?}"),
    }
    assert!(s.check_admission(1).is_ok());

    match s.check_timeout(5.0e-3) {
        Err(ServeError::TimeoutExceeded { waited, budget }) => {
            assert!(waited > budget);
        }
        other => panic!("expected TimeoutExceeded, got {other:?}"),
    }
    assert!(s.check_timeout(0.5e-3).is_ok());

    match s.serve_one(n + 3) {
        Err(ServeError::VertexOutOfRange { vertex, limit }) => {
            assert_eq!((vertex, limit), (n + 3, n));
        }
        other => panic!("expected VertexOutOfRange, got {other:?}"),
    }

    // A snapshot trained on a different graph shape is refused up front.
    let (other_dataset, _) = trained(8);
    let mut cfg = DatasetConfig::products_like(5); // 32 vertices ≠ 64
    cfg.feature_dim = 8;
    cfg.num_classes = 4;
    let small = Arc::new(build_dataset(&cfg, &mut StdRng::seed_from_u64(1)).unwrap());
    let (_, small_snapshot) = {
        let session = TrainingSession::builder()
            .dataset(Arc::clone(&small))
            .sampler(GraphSageSampler::new(vec![3, 3]).with_self_loops())
            .backend(LocalBackend::new(BulkSamplerConfig::new(8, 2)).unwrap())
            .hidden_dim(8)
            .learning_rate(0.05)
            .epochs(1)
            .seed(13)
            .without_evaluation()
            .build()
            .unwrap();
        session.train_and_export().unwrap()
    };
    match ServingSession::new(
        Arc::clone(&other_dataset),
        GraphSageSampler::new(vec![3, 3]).with_self_loops(),
        small_snapshot,
        ServingConfig::default(),
    ) {
        Err(ServeError::ShapeMismatch { what, .. }) => assert_eq!(what, "num_vertices"),
        other => panic!("expected ShapeMismatch, got {:?}", other.err()),
    }
}

/// The determinism guard behind the CI serve gate: two fresh same-seed
/// sessions replaying the same open-loop trace agree on every counter, the
/// modeled communication books, and every virtual-time latency sample.
#[test]
fn trace_replay_is_deterministic() {
    let (dataset, snapshot) = trained(11);
    let n = dataset.num_vertices();
    let config = ServingConfig {
        coalesce_window: 1.0e-3,
        hot_capacity: 16,
        seed: 21,
        ..ServingConfig::default()
    };
    let trace = RequestTrace::open_loop(200, 3000.0, 1.1, n, 17);

    let run = || {
        let mut s = session(&dataset, &snapshot, config);
        s.run_trace(&trace).unwrap()
    };
    let (a, b) = (run(), run());

    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats.requests_offered, 200);
    assert!(a.stats.coalescing_factor() > 1.0, "window 1ms at 3k QPS must coalesce");
    assert_eq!(a.comm.words_sent, b.comm.words_sent);
    assert_eq!(a.comm.messages, b.comm.messages);
    assert_eq!(a.comm.cache_hits, b.comm.cache_hits);
    assert_eq!(a.comm.amortized_requests, b.comm.amortized_requests);
    assert_eq!(a.latencies.len(), b.latencies.len());
    for (x, y) in a.latencies.iter().zip(&b.latencies) {
        assert_eq!(x.to_bits(), y.to_bits(), "virtual-time latency diverged between replays");
    }
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    // The amortized α–β books actually amortized: at most one message per
    // micro-bulk (a batch whose frontier is fully hot-resident sends none),
    // far fewer than one α per request.
    assert!(a.comm.messages <= a.stats.batches);
    assert!(a.stats.batches < a.stats.requests_served);
    assert!(a.comm.amortized_requests > 0);
    assert!(a.comm.amortized_requests <= a.stats.requests_served);
}

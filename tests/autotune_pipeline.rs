//! Integration tests for the cost-model-driven auto-tuner
//! (`TrainingSession::builder().auto()`).
//!
//! The tuner must be **pure configuration**: building with `.auto()` and
//! training must be bit-identical to explicitly passing the chosen knobs to
//! a fresh builder — the probes only read, the applied choice only selects
//! among schedules that are themselves byte-identical in what they compute.
//! The choice itself must be deterministic (same workload, same probes, same
//! arg-min) and conservative (local backends untouched, lossy codecs only
//! when opted into).

mod common;

use dmbs::comm::{Codec, CostModel, Runtime};
use dmbs::gnn::{
    CacheKnob, FeatureCacheConfig, TrainingReport, TrainingSession, TuningChoice, TuningOutcome,
};
use dmbs::graph::datasets::Dataset;
use dmbs::sampling::{BulkSamplerConfig, DistConfig, GraphSageSampler, ReplicatedBackend};
use std::sync::Arc;

fn tiny_dataset(seed: u64) -> Arc<Dataset> {
    common::arc_products_dataset(7, 16, 4, 0.5, Some(0.6), seed) // 128 vertices
}

/// A replicated backend on a comm-dominant cost model, so the schedule knobs
/// the tuner searches are load-bearing in the predicted epoch time.
fn backend(p: usize, c: usize) -> ReplicatedBackend {
    let runtime = Runtime::with_cost_model(p, CostModel::new(2.0e-4, 5.0e-8)).expect("runtime");
    ReplicatedBackend::with_runtime(runtime, DistConfig::new(p, c, BulkSamplerConfig::new(16, 2)))
        .expect("backend")
}

fn builder(
    dataset: &Arc<Dataset>,
    p: usize,
    c: usize,
) -> dmbs::gnn::SessionBuilder<GraphSageSampler, ReplicatedBackend> {
    TrainingSession::builder()
        .dataset(Arc::clone(dataset))
        .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
        .backend(backend(p, c))
        .hidden_dim(16)
        .learning_rate(0.05)
        .epochs(2)
        .seed(42)
}

fn cache_config(choice: &TuningChoice) -> FeatureCacheConfig {
    match choice.cache {
        CacheKnob::Off => FeatureCacheConfig::Off,
        CacheKnob::EpochPinned => FeatureCacheConfig::EpochPinned,
        CacheKnob::Lru { byte_budget } => FeatureCacheConfig::Lru { byte_budget },
    }
}

fn assert_reports_identical(auto: &TrainingReport, explicit: &TrainingReport, label: &str) {
    assert_eq!(auto.epochs.len(), explicit.epochs.len(), "{label}: epoch counts");
    for (a, e) in auto.epochs.iter().zip(&explicit.epochs) {
        assert_eq!(
            a.mean_loss.to_bits(),
            e.mean_loss.to_bits(),
            "{label}: epoch {} losses diverged",
            a.epoch
        );
        assert_eq!(a.comm.words_sent, e.comm.words_sent, "{label}: words diverged");
        assert_eq!(a.comm.messages, e.comm.messages, "{label}: messages diverged");
        assert_eq!(a.comm.bytes_on_wire, e.comm.bytes_on_wire, "{label}: bytes diverged");
        assert_eq!(a.comm.words_saved, e.comm.words_saved, "{label}: saved words diverged");
    }
    assert_eq!(auto.test_accuracy, explicit.test_accuracy, "{label}: accuracy diverged");
}

/// The tentpole contract: `.auto()` trains bit-identically to explicitly
/// passing the chosen configuration to a fresh builder.
#[test]
fn auto_trains_bit_identically_to_explicit_choice() {
    let dataset = tiny_dataset(9);
    for (p, c) in [(2, 1), (4, 2)] {
        let auto_session = builder(&dataset, p, c).auto().expect("auto build");
        let outcome = auto_session.tuning_outcome().expect("distributed sessions are tuned");
        let choice = outcome.chosen().choice;

        let explicit = builder(&dataset, p, c)
            .feature_cache(cache_config(&choice))
            .wire_codec(choice.codec)
            .overlap(choice.overlap)
            .build()
            .expect("explicit build");
        assert!(explicit.tuning_outcome().is_none(), "build() must not tune");

        let auto_report = auto_session.train().expect("auto train");
        let explicit_report = explicit.train().expect("explicit train");
        assert_reports_identical(&auto_report, &explicit_report, &format!("p={p} c={c}"));
    }
}

/// On a comm-dominant workload with duplicated frontiers, the arg-min picks
/// the pinned cache, and with `c > 1` the overlapped schedule whose probe
/// demonstrated hidden seconds.  The chosen candidate's predicted time is
/// never worse than the default's (candidate 0 of every grid).
#[test]
fn auto_picks_the_communication_avoiding_schedule() {
    let dataset = tiny_dataset(9);
    let session = builder(&dataset, 4, 2).auto().expect("auto build");
    let outcome = session.tuning_outcome().expect("tuned");
    let chosen = outcome.chosen();
    assert_eq!(chosen.choice.cache, CacheKnob::EpochPinned, "pinned cache saves words");
    assert_eq!(chosen.choice.codec, Codec::Exact, "lossy codecs are opt-in");
    assert!(chosen.choice.overlap, "the overlap probe demonstrated hidden seconds");
    let default = &outcome.scored[0];
    assert_eq!(default.choice, TuningChoice::baseline());
    assert!(chosen.cost.total_s() <= default.cost.total_s());
    assert!(chosen.cost.words < default.cost.words, "the cache must save words at (4, 2)");
}

/// The tuner's choice is deterministic: two independent `.auto()` builds of
/// the same workload score the same grid (counter-for-counter) and pick the
/// same candidate.
#[test]
fn auto_choice_is_deterministic() {
    let dataset = tiny_dataset(9);
    let first = builder(&dataset, 4, 2).auto().expect("first auto");
    let second = builder(&dataset, 4, 2).auto().expect("second auto");
    let a: &TuningOutcome = first.tuning_outcome().expect("tuned");
    let b: &TuningOutcome = second.tuning_outcome().expect("tuned");
    assert_eq!(a.chosen_index, b.chosen_index);
    assert_eq!(a.scored.len(), b.scored.len());
    for (x, y) in a.scored.iter().zip(&b.scored) {
        assert_eq!(x.choice, y.choice);
        // The counters are pure functions of the (deterministic) probe
        // books; only measured compute seconds may differ run-over-run.
        assert_eq!(x.cost.words, y.cost.words);
        assert_eq!(x.cost.messages, y.cost.messages);
        assert_eq!(x.cost.bytes_on_wire, y.cost.bytes_on_wire);
        assert_eq!(x.cost.comm_ns(), y.cost.comm_ns());
    }
}

/// Local backends have no communication to tune: `.auto()` returns the built
/// session untouched, with no tuning outcome, and it trains identically to a
/// plain `build()`.
#[test]
fn auto_leaves_local_backends_untouched() {
    let dataset = tiny_dataset(9);
    let make = || {
        TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
            .backend(dmbs::sampling::LocalBackend::new(BulkSamplerConfig::new(16, 2)).unwrap())
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(2)
            .seed(42)
    };
    let auto_session = make().auto().expect("auto build");
    assert!(auto_session.tuning_outcome().is_none(), "nothing to tune locally");
    let auto_report = auto_session.train().expect("auto train");
    let plain_report = make().build().expect("build").train().expect("train");
    assert_reports_identical(&auto_report, &plain_report, "local");
}

/// Lossy codecs enter the grid only when the builder explicitly set one —
/// and then the tuner calibrates their real byte savings and applies the
/// cheapest, still training bit-identically to the explicit configuration.
#[test]
fn auto_admits_lossy_codecs_only_on_opt_in() {
    let dataset = tiny_dataset(9);
    let session = builder(&dataset, 4, 2).wire_codec(Codec::Int8).auto().expect("auto build");
    let outcome = session.tuning_outcome().expect("tuned");
    assert!(
        outcome.scored.iter().any(|s| s.choice.codec == Codec::Fp16)
            && outcome.scored.iter().any(|s| s.choice.codec == Codec::Int8),
        "opting into a lossy codec admits all lossy candidates"
    );
    let chosen = outcome.chosen();
    assert_eq!(chosen.choice.codec, Codec::Int8, "int8 ships the fewest bytes");
    assert!(chosen.cost.bytes_on_wire < 8 * chosen.cost.words);

    let explicit = builder(&dataset, 4, 2)
        .feature_cache(cache_config(&chosen.choice))
        .wire_codec(chosen.choice.codec)
        .overlap(chosen.choice.overlap)
        .build()
        .expect("explicit build");
    let auto_report = session.train().expect("auto train");
    let explicit_report = explicit.train().expect("explicit train");
    assert_reports_identical(&auto_report, &explicit_report, "lossy opt-in");
}

//! Distributed end-to-end training (Figure 3 pipeline) on simulated ranks:
//! graph-replicated bulk sampling, a 1.5D-partitioned feature store fetched
//! with all-to-allv across process columns, and data-parallel propagation.
//!
//! Run with `cargo run --release --example distributed_training`.

use dmbs::comm::Runtime;
use dmbs::gnn::trainer::{train_distributed, SamplerChoice};
use dmbs::gnn::TrainingConfig;
use dmbs::graph::datasets::{build_dataset, DatasetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = DatasetConfig::papers_like(10); // 1024 vertices, sparse like Papers
    config.feature_dim = 32;
    config.num_classes = 8;
    config.train_fraction = 0.25;
    let dataset = build_dataset(&config, &mut StdRng::seed_from_u64(11))?;

    let training = TrainingConfig {
        fanouts: vec![10, 5],
        hidden_dim: 32,
        batch_size: 32,
        bulk_size: 8,
        learning_rate: 0.05,
        epochs: 2,
        seed: 5,
    };

    // Sweep simulated "GPU" counts like Figure 4, comparing the replicated
    // feature store against the NoRep configuration of Figure 6.
    for p in [4usize, 8] {
        let runtime = Runtime::new(p)?;
        let c = 2;
        let replicated =
            train_distributed(&runtime, &dataset, &training, c, true, SamplerChoice::MatrixSage)?;
        let norep =
            train_distributed(&runtime, &dataset, &training, 1, false, SamplerChoice::MatrixSage)?;
        let r = replicated.last().expect("at least one epoch");
        let n = norep.last().expect("at least one epoch");
        println!(
            "p={p:>2} c={c}: replicated epoch {:.4}s (sampling {:.4}s, fetch {:.4}s, prop {:.4}s, {} words moved) | NoRep epoch {:.4}s ({} words moved)",
            r.total_time(),
            r.sampling_time(),
            r.feature_fetch_time(),
            r.propagation_time(),
            r.comm.words_sent,
            n.total_time(),
            n.comm.words_sent,
        );
    }
    Ok(())
}

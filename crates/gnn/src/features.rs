//! The distributed feature store and its all-to-allv fetching step (§6.2).
//!
//! The input feature matrix `H` is partitioned into block rows.  With the
//! paper's 1.5D scheme, `H` is split into `p/c` block rows, each replicated
//! on the `c` ranks of its process row; a rank then fetches the rows it needs
//! with an all-to-allv **within its process column**, which contains exactly
//! one replica of every block row.  The larger the replication factor `c`,
//! the fewer ranks each fetch touches — the mechanism behind the Figure 4/6
//! scaling of the feature-fetching phase.  Setting the number of blocks to
//! `p` (one block per rank, `c = 1` for features) gives the "NoRep"
//! configuration of Figure 6.

use crate::error::GnnError;
use crate::Result;
use dmbs_comm::{Communicator, Group};
use dmbs_graph::partition::OneDPartition;
use dmbs_matrix::DenseMatrix;

/// One rank's shard of the vertex feature matrix.
#[derive(Debug, Clone)]
pub struct FeatureStore {
    partition: OneDPartition,
    block_index: usize,
    block: DenseMatrix,
    feature_dim: usize,
}

impl FeatureStore {
    /// Builds the shard for `block_index` out of the full feature matrix.
    ///
    /// `num_blocks` is the number of block rows `H` is split into (the number
    /// of process rows in the 1.5D layout, or `p` for NoRep).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if `block_index >= num_blocks` or
    /// the partition cannot be built.
    pub fn from_full(
        features: &DenseMatrix,
        num_blocks: usize,
        block_index: usize,
    ) -> Result<Self> {
        if block_index >= num_blocks {
            return Err(GnnError::InvalidConfig(format!(
                "block index {block_index} out of range for {num_blocks} blocks"
            )));
        }
        let partition = OneDPartition::new(features.rows(), num_blocks)?;
        let range = partition.range(block_index);
        let rows: Vec<usize> = range.collect();
        let block = features.gather_rows(&rows)?;
        Ok(FeatureStore { partition, block_index, block, feature_dim: features.cols() })
    }

    /// Feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of vertex rows stored locally.
    pub fn local_rows(&self) -> usize {
        self.block.rows()
    }

    /// The vertex partition over all blocks.
    pub fn partition(&self) -> &OneDPartition {
        &self.partition
    }

    /// Reads the features of vertices that are stored locally.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if any vertex is not owned by this
    /// block.
    pub fn local_features(&self, vertices: &[usize]) -> Result<DenseMatrix> {
        let range = self.partition.range(self.block_index);
        let locals: Vec<usize> = vertices
            .iter()
            .map(|&v| {
                if range.contains(&v) {
                    Ok(v - range.start)
                } else {
                    Err(GnnError::InvalidConfig(format!(
                        "vertex {v} is not stored in block {}",
                        self.block_index
                    )))
                }
            })
            .collect::<Result<_>>()?;
        Ok(self.block.gather_rows(&locals)?)
    }

    /// Fetches the features of arbitrary vertices with an all-to-allv across
    /// `group`, where the member at position `i` of the group owns block `i`
    /// (in the 1.5D layout this is the caller's process column; for NoRep it
    /// is the whole world).  Every member of the group must call this the
    /// same number of times per training step, even with an empty request.
    ///
    /// Returns the requested rows in the order of `vertices`.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidConfig`] if the group size does not match
    /// the number of blocks, or a communication error if a collective fails.
    pub fn fetch(
        &self,
        comm: &mut Communicator,
        group: &Group,
        vertices: &[usize],
    ) -> Result<DenseMatrix> {
        if group.len() != self.partition.num_parts() {
            return Err(GnnError::InvalidConfig(format!(
                "feature matrix is split into {} blocks but the fetch group has {} members",
                self.partition.num_parts(),
                group.len()
            )));
        }
        // Bucket the requested vertices by owning block.
        let mut requests: Vec<Vec<usize>> = vec![Vec::new(); group.len()];
        let mut origin: Vec<(usize, usize)> = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if v >= self.partition.len() {
                return Err(GnnError::InvalidConfig(format!("vertex {v} out of range")));
            }
            let owner = self.partition.owner_of(v);
            origin.push((owner, requests[owner].len()));
            requests[owner].push(v);
        }

        // Exchange requests, serve them from the local block, exchange rows.
        let incoming = comm.group_all_to_allv(group, requests.clone())?;
        let my_range = self.partition.range(self.block_index);
        let replies: Vec<Vec<f64>> = incoming
            .iter()
            .map(|wanted| {
                let mut flat = Vec::with_capacity(wanted.len() * self.feature_dim);
                for &v in wanted {
                    let local = v - my_range.start;
                    flat.extend_from_slice(self.block.row(local));
                }
                flat
            })
            .collect();
        let received = comm.group_all_to_allv(group, replies)?;

        // Reassemble in the order the caller asked for.
        let mut out = DenseMatrix::zeros(vertices.len(), self.feature_dim);
        for (i, &(owner, slot)) in origin.iter().enumerate() {
            let start = slot * self.feature_dim;
            out.row_mut(i).copy_from_slice(&received[owner][start..start + self.feature_dim]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_comm::{ProcessGrid, Runtime};

    fn full_features(n: usize, f: usize) -> DenseMatrix {
        // Row v = [v, v+0.5, v+1.0, ...] so fetched rows are easy to verify.
        DenseMatrix::from_rows(
            &(0..n)
                .map(|v| (0..f).map(|j| v as f64 + j as f64 * 0.5).collect())
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn shard_construction_and_local_reads() {
        let h = full_features(10, 3);
        let store = FeatureStore::from_full(&h, 3, 1).unwrap();
        assert_eq!(store.feature_dim(), 3);
        assert_eq!(store.local_rows(), 3); // rows 4..7
        let local = store.local_features(&[4, 6]).unwrap();
        assert_eq!(local.get(0, 0), 4.0);
        assert_eq!(local.get(1, 0), 6.0);
        assert!(store.local_features(&[0]).is_err());
        assert!(FeatureStore::from_full(&h, 3, 3).is_err());
    }

    #[test]
    fn fetch_within_process_column_matches_full_matrix() {
        // 4 ranks, c = 2: feature matrix split into 2 block rows; each process
        // column {0,2} / {1,3} holds one full copy.
        let n = 12;
        let h = full_features(n, 4);
        let runtime = Runtime::new(4).unwrap();
        let outs = runtime
            .run(|comm| {
                let grid = ProcessGrid::new(comm.size(), 2).unwrap();
                let (my_row, _) = grid.coords(comm.rank());
                let store = FeatureStore::from_full(&h, grid.rows(), my_row).unwrap();
                let col_group = Group::new(&grid.col_ranks(comm.rank())).unwrap();
                // Each rank wants a different scattered set of vertices.
                let wanted: Vec<usize> = vec![comm.rank(), 11 - comm.rank(), 5];
                let fetched = store.fetch(comm, &col_group, &wanted).unwrap();
                (wanted, fetched)
            })
            .unwrap();
        for out in outs {
            let (wanted, fetched) = out.value;
            for (i, &v) in wanted.iter().enumerate() {
                assert_eq!(fetched.row(i), h.row(v), "vertex {v} features mismatch");
            }
            // Fetching moved data between ranks.
            assert!(out.stats.messages > 0);
        }
    }

    #[test]
    fn norep_fetch_uses_whole_world_and_costs_more_messages() {
        let n = 16;
        let h = full_features(n, 2);
        let runtime = Runtime::new(4).unwrap();

        // Replicated (c = 4 → a single block, fetches are local).
        let rep = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, 1, 0).unwrap();
                let group = Group::new(&[comm.rank()]).unwrap();
                let fetched = store.fetch(comm, &group, &[1, 7, 13]).unwrap();
                (fetched.get(2, 0), comm.stats().words_sent)
            })
            .unwrap();
        // NoRep (one block per rank, fetch across the whole world).
        let norep = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, comm.size(), comm.rank()).unwrap();
                let world = comm.world();
                let fetched = store.fetch(comm, &world, &[1, 7, 13]).unwrap();
                (fetched.get(2, 0), comm.stats().words_sent)
            })
            .unwrap();
        for (r, n_) in rep.iter().zip(&norep) {
            assert_eq!(r.value.0, 13.0);
            assert_eq!(n_.value.0, 13.0);
            // NoRep ships feature rows over the (simulated) network; the fully
            // replicated store ships nothing.
            assert_eq!(r.value.1, 0);
            assert!(n_.value.1 > 0);
        }
    }

    #[test]
    fn fetch_validates_group_and_vertices() {
        let h = full_features(8, 2);
        let runtime = Runtime::new(2).unwrap();
        let outs = runtime
            .run(|comm| {
                let store = FeatureStore::from_full(&h, 2, comm.rank()).unwrap();
                let wrong_group = Group::new(&[comm.rank()]).unwrap();
                let bad_group = store.fetch(comm, &wrong_group, &[0]).is_err();
                let world = comm.world();
                let bad_vertex = store.fetch(comm, &world, &[99]).is_err();
                bad_group && bad_vertex
            })
            .unwrap();
        assert!(outs.iter().all(|o| o.value));
    }
}

//! Layer-wise sampling with LADIES and FastGCN, expressed through the same
//! matrix framework as GraphSAGE, plus a comparison against the reference
//! per-batch CPU LADIES implementation.
//!
//! Run with `cargo run --release --example ladies_layerwise`.

use dmbs::graph::generators::{figure1_example, rmat, RmatConfig};
use dmbs::sampling::baseline::ladies_reference;
use dmbs::sampling::{BulkSamplerConfig, FastGcnSampler, LadiesSampler, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reproduce the worked example of Figure 2b: batch {1, 5} on the 6-vertex
    // example graph, s = 2.
    let example = figure1_example();
    let ladies = LadiesSampler::new(1, 2);
    let mut rng = StdRng::seed_from_u64(1);
    let sample = ladies.sample_minibatch(example.adjacency(), &[1, 5], &mut rng)?;
    println!(
        "Figure 2b example: batch {{1, 5}} sampled support {:?} with {} bipartite edges",
        sample.layers[0].cols,
        sample.layers[0].num_edges()
    );

    // A larger synthetic graph: bulk LADIES vs the reference CPU sampler.
    let graph = rmat(&RmatConfig::new(11, 12), &mut StdRng::seed_from_u64(3))?;
    let batches: Vec<Vec<usize>> = (0..16)
        .map(|i| ((i * 64)..(i * 64 + 32)).map(|v| v % graph.num_vertices()).collect())
        .collect();
    let config = BulkSamplerConfig::new(32, batches.len());

    let bulk_start = std::time::Instant::now();
    let ladies = LadiesSampler::new(1, 128);
    let bulk = ladies.sample_bulk(graph.adjacency(), &batches, &config, &mut rng)?;
    let bulk_time = bulk_start.elapsed().as_secs_f64();

    let reference_start = std::time::Instant::now();
    let reference = ladies_reference(graph.adjacency(), &batches, 1, 128, &mut rng)?;
    let reference_time = reference_start.elapsed().as_secs_f64();

    println!(
        "bulk matrix LADIES: {} batches in {:.4}s ({} edges); reference per-batch LADIES: {:.4}s ({} edges)",
        bulk.num_batches(),
        bulk_time,
        bulk.total_edges(),
        reference_time,
        reference.total_edges()
    );

    // FastGCN: degree-proportional layer-wise sampling through the same API.
    let fastgcn = FastGcnSampler::new(2, 64);
    let sample = fastgcn.sample_minibatch(graph.adjacency(), &batches[0], &mut rng)?;
    println!(
        "FastGCN 2-layer sample: {} support vertices per layer, {} edges total",
        sample.layers[0].cols.len(),
        sample.total_edges()
    );
    Ok(())
}

//! Ablation: replication factor `c` in the Graph-Partitioned algorithm.
//!
//! Sweeps `c` for a fixed rank count and reports the probability-phase
//! communication volume and modeled time, which the paper's §5.2.1 analysis
//! predicts should improve as `c` grows (the k·b·d/c row-data term shrinks).

use dmbs_bench::{dataset, print_table, secs, Scale};
use dmbs_comm::{CostModel, Phase, Runtime};
use dmbs_graph::datasets::DatasetKind;
use dmbs_graph::minibatch::MinibatchPlan;
use dmbs_sampling::partitioned::run_partitioned_sage;

fn main() {
    let scale = Scale::from_env();
    let ds = dataset(DatasetKind::Papers, scale);
    let a = ds.graph.adjacency();
    let batch_size = (ds.train_set.len() / 16).clamp(8, 128);
    let plan = MinibatchPlan::sequential(&ds.train_set, batch_size).expect("non-empty training set");
    let batches = plan.batches().to_vec();
    let p = *scale.rank_counts().last().unwrap_or(&16);
    let runtime = Runtime::new(p).expect("rank count is positive");
    let model = CostModel::default();
    let avg_degree = ds.graph.average_degree();

    let mut rows = Vec::new();
    for &c in &[1usize, 2, 4, 8] {
        if p % c != 0 || c > p {
            continue;
        }
        let per_row = run_partitioned_sage(&runtime, c, a, &batches, &[15, 10, 5], false, 29)
            .expect("partitioned sampling failed");
        let comm_time: f64 = per_row.iter().map(|o| o.profile.total_comm()).fold(0.0, f64::max);
        let prob_comm: f64 =
            per_row.iter().map(|o| o.profile.comm(Phase::Probability)).fold(0.0, f64::max);
        let words: usize = per_row.iter().map(|o| o.comm_stats.words_sent).sum();
        let predicted = model.predict_prob_cost(p, c, batches.len(), batch_size, avg_degree);
        rows.push(vec![
            format!("{c}"),
            format!("{words}"),
            secs(prob_comm),
            secs(comm_time),
            secs(predicted),
        ]);
    }
    print_table(
        &format!("Ablation — replication factor c (Papers stand-in, p = {p})"),
        &["c", "words sent (all rows)", "prob comm (modeled)", "total comm (modeled)", "T_prob predicted (§5.2.1)"],
        &rows,
    );
    println!("\nExpected shape: the measured probability-phase communication follows the analytical T_prob trend — improving with c until the c·k·b·d/p all-reduce term takes over.");
}

//! # dmbs-sampling
//!
//! Matrix-based bulk minibatch sampling for GNN training — the primary
//! contribution of *Distributed Matrix-Based Sampling for Graph Neural
//! Network Training* (MLSys 2024), reimplemented from scratch in Rust.
//!
//! The paper expresses GNN sampling algorithms as sparse matrix operations
//! (Algorithm 1):
//!
//! ```text
//! for l = L .. 1:
//!     P       = Q^l · A            (SpGEMM)
//!     P       = NORM(P)            (sampler-specific row normalization)
//!     Q^(l-1) = SAMPLE(P, b, s)    (inverse transform sampling per row)
//!     A^l     = EXTRACT(A, Q^l, Q^(l-1))
//! ```
//!
//! and samples `k` minibatches *in bulk* by vertically stacking their `Q`,
//! `P` and `A^l` matrices (Equation 1).
//!
//! The crate's API mirrors the paper's central claim — one formulation for
//! **every sampling algorithm × every distribution strategy** — with two
//! orthogonal abstractions:
//!
//! * the [`Sampler`] trait picks the algorithm:
//!   [`GraphSageSampler`] (node-wise, §4.1), [`LadiesSampler`] (layer-wise
//!   dependency, §4.2), [`FastGcnSampler`] (degree-based layer-wise,
//!   §2.2.2);
//! * the [`SamplingBackend`] trait picks the distribution strategy:
//!   [`LocalBackend`] (single device, §4), [`ReplicatedBackend`]
//!   (Graph Replicated, §5.1: `Q` partitioned 1D, `A` replicated, zero
//!   communication) and [`Partitioned1p5dBackend`] (Graph Partitioned, §5.2:
//!   a `p/c × c` grid driving the sparsity-aware 1.5D SpGEMM of
//!   Algorithm 2), all sharing one [`DistConfig`] and returning
//!   [`EpochSamples`].
//!
//! Because bulk sampling materializes every frontier up front, the
//! feature-fetching phase can be planned: [`FetchPlan`] deduplicates the
//! union of the sampled layer-0 frontiers (via
//! [`EpochSamples::fetch_plan`]), the basis of the `dmbs-gnn` feature
//! cache's prefetch-once pipeline.
//!
//! Supporting modules: [`its`] — inverse transform sampling (and rejection
//! sampling, for the ablation) over CSR probability rows, including the
//! per-row-seeded parallel [`its::sample_rows_par`] whose output is
//! byte-identical at any thread count (the
//! [`BulkSamplerConfig::parallelism`] knob); [`baseline`] —
//! per-vertex samplers standing in for Quiver/DGL (including a UVA-style
//! slow-memory model) and a reference per-batch CPU LADIES; [`replicated`] /
//! [`partitioned`] — the rank-level machinery behind the backends (their
//! free-function drivers are deprecated in favor of the trait).
//!
//! # Example: one sampler, two distribution strategies
//!
//! ```
//! use dmbs_sampling::{
//!     BulkSamplerConfig, DistConfig, GraphSageSampler, LocalBackend,
//!     Partitioned1p5dBackend, SamplingBackend,
//! };
//! use dmbs_graph::generators::figure1_example;
//!
//! # fn main() -> Result<(), dmbs_sampling::SamplingError> {
//! let graph = figure1_example();
//! let sampler = GraphSageSampler::new(vec![2]);
//! let batches = vec![vec![1, 5], vec![0, 3]];
//! let bulk = BulkSamplerConfig::new(2, 2);
//!
//! // Single device …
//! let local = LocalBackend::new(bulk)?;
//! let out = local.sample_epoch(&sampler, graph.adjacency(), &batches, 7)?;
//! assert_eq!(out.num_batches(), 2);
//! // Layer L of the first minibatch has the batch vertices as rows.
//! assert_eq!(out.minibatches()[0].layers.last().unwrap().rows, vec![1, 5]);
//!
//! // … and the same call against a 4-rank, c = 2 partitioned grid.
//! let partitioned = Partitioned1p5dBackend::new(DistConfig::new(4, 2, bulk))?;
//! let out = partitioned.sample_epoch(&sampler, graph.adjacency(), &batches, 7)?;
//! assert_eq!(out.num_batches(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod baseline;
pub mod error;
pub mod fastgcn;
pub mod its;
pub mod ladies;
pub mod micro;
pub mod partitioned;
pub mod plan;
pub mod replicated;
pub mod sage;
pub mod sampler;
pub mod seed;
pub mod spec;

pub use backend::{
    DistConfig, EpochSamples, LocalBackend, Partitioned1p5dBackend, ReplicatedBackend,
    SamplingBackend,
};
pub use error::SamplingError;
pub use fastgcn::FastGcnSampler;
pub use ladies::LadiesSampler;
pub use micro::{request_stream_seed, sample_micro_bulk, MicroBulkSample, MicroRequest};
pub use plan::{BulkSampleOutput, FetchPlan, LayerSample, MinibatchSample};
pub use sage::GraphSageSampler;
pub use sampler::{BulkSamplerConfig, PartitionedContext, Sampler};
pub use spec::{BackendSpec, SamplerSpec};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, SamplingError>;

//! Synthetic graph generators.
//!
//! The paper's datasets (OGB `products`, OGB `papers100M`, HipMCL `protein`)
//! cannot be shipped with this reproduction, so benchmarks are run on
//! synthetic graphs with matched average degree and power-law skew.  R-MAT is
//! the primary generator (it reproduces the heavy-tailed degree distributions
//! that drive feature-fetch volume and sampling-cost skew); Erdős–Rényi and
//! Chung–Lu are provided for controlled experiments, and a few deterministic
//! graphs support unit tests.

use crate::graph::{Graph, GraphError};
use rand::Rng;

/// Configuration for the R-MAT recursive matrix generator.
///
/// Produces a graph with `2^scale` vertices and approximately
/// `edge_factor * 2^scale` directed edges using the standard Graph500
/// partition probabilities (a, b, c, d).
#[derive(Debug, Clone, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of directed edges per vertex.
    pub edge_factor: usize,
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
    /// If true, add the reverse of every generated edge (symmetric graph).
    pub symmetric: bool,
}

impl RmatConfig {
    /// Creates a config with the Graph500 defaults
    /// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) and a directed output.
    pub fn new(scale: u32, edge_factor: usize) -> Self {
        RmatConfig { scale, edge_factor, a: 0.57, b: 0.19, c: 0.19, symmetric: false }
    }

    /// Enables symmetrization (each edge is added in both directions).
    pub fn symmetric(mut self) -> Self {
        self.symmetric = true;
        self
    }

    /// Number of vertices this configuration generates.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }
}

/// Generates an R-MAT graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidConfig`] if `scale == 0`, `edge_factor == 0`
/// or the quadrant probabilities are invalid (negative or summing above 1).
pub fn rmat<R: Rng + ?Sized>(config: &RmatConfig, rng: &mut R) -> Result<Graph, GraphError> {
    if config.scale == 0 {
        return Err(GraphError::InvalidConfig("rmat scale must be at least 1".into()));
    }
    if config.edge_factor == 0 {
        return Err(GraphError::InvalidConfig("rmat edge_factor must be at least 1".into()));
    }
    let d = 1.0 - config.a - config.b - config.c;
    if config.a < 0.0 || config.b < 0.0 || config.c < 0.0 || d < 0.0 {
        return Err(GraphError::InvalidConfig(
            "rmat quadrant probabilities must be non-negative and sum to at most 1".into(),
        ));
    }
    let n = config.num_vertices();
    let m = n * config.edge_factor;
    let mut edges = Vec::with_capacity(if config.symmetric { 2 * m } else { m });
    for _ in 0..m {
        let (mut lo_r, mut hi_r) = (0usize, n);
        let (mut lo_c, mut hi_c) = (0usize, n);
        while hi_r - lo_r > 1 {
            let x: f64 = rng.gen();
            let (top, left) = if x < config.a {
                (true, true)
            } else if x < config.a + config.b {
                (true, false)
            } else if x < config.a + config.b + config.c {
                (false, true)
            } else {
                (false, false)
            };
            let mid_r = (lo_r + hi_r) / 2;
            let mid_c = (lo_c + hi_c) / 2;
            if top {
                hi_r = mid_r;
            } else {
                lo_r = mid_r;
            }
            if left {
                hi_c = mid_c;
            } else {
                lo_c = mid_c;
            }
        }
        let (u, v) = (lo_r, lo_c);
        if u != v {
            edges.push((u, v));
            if config.symmetric {
                edges.push((v, u));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Configuration for the Erdős–Rényi `G(n, p)` generator, expressed through a
/// target average degree instead of a raw probability.
#[derive(Debug, Clone, PartialEq)]
pub struct ErdosRenyiConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Expected out-degree of each vertex.
    pub average_degree: f64,
}

/// Generates an Erdős–Rényi random digraph by sampling, for each vertex, a
/// Binomial(n, d/n)-distributed number of uniform out-neighbors.
///
/// # Errors
///
/// Returns [`GraphError::InvalidConfig`] if `num_vertices == 0` or the average
/// degree is negative or at least `num_vertices`.
pub fn erdos_renyi<R: Rng + ?Sized>(
    config: &ErdosRenyiConfig,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let n = config.num_vertices;
    if n == 0 {
        return Err(GraphError::InvalidConfig("erdos_renyi requires at least one vertex".into()));
    }
    if config.average_degree < 0.0 || config.average_degree >= n as f64 {
        return Err(GraphError::InvalidConfig(format!(
            "average degree {} must be in [0, {n})",
            config.average_degree
        )));
    }
    let p = config.average_degree / n as f64;
    let mut edges = Vec::new();
    for u in 0..n {
        // Geometric skipping over the implicit Bernoulli trials keeps this
        // O(m) instead of O(n^2).
        if p <= 0.0 {
            continue;
        }
        let mut v = 0usize;
        loop {
            let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
            v = v.saturating_add(skip);
            if v >= n {
                break;
            }
            if v != u {
                edges.push((u, v));
            }
            v += 1;
            if v >= n {
                break;
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Configuration for the Chung–Lu generator, which produces a graph whose
/// expected degree sequence follows a power law with the given exponent.
#[derive(Debug, Clone, PartialEq)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Target average degree.
    pub average_degree: f64,
    /// Power-law exponent of the expected degree sequence (typically 2–3).
    pub exponent: f64,
}

/// Generates a Chung–Lu random graph with a power-law expected degree
/// sequence.
///
/// # Errors
///
/// Returns [`GraphError::InvalidConfig`] if `num_vertices == 0`, the average
/// degree is not positive, or the exponent is not greater than 1.
pub fn chung_lu<R: Rng + ?Sized>(config: &ChungLuConfig, rng: &mut R) -> Result<Graph, GraphError> {
    let n = config.num_vertices;
    if n == 0 {
        return Err(GraphError::InvalidConfig("chung_lu requires at least one vertex".into()));
    }
    if config.average_degree <= 0.0 {
        return Err(GraphError::InvalidConfig("average degree must be positive".into()));
    }
    if config.exponent <= 1.0 {
        return Err(GraphError::InvalidConfig("power-law exponent must exceed 1".into()));
    }
    // Expected weights w_i ~ i^(-1/(exponent-1)), rescaled to hit the target
    // average degree.
    let gamma = 1.0 / (config.exponent - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
    let sum: f64 = weights.iter().sum();
    let scale = config.average_degree * n as f64 / sum;
    for w in &mut weights {
        *w *= scale;
    }
    let total: f64 = weights.iter().sum();
    // Sample m edges by picking endpoints proportional to weight.
    let m = (config.average_degree * n as f64).round() as usize;
    let cumulative = dmbs_matrix::prefix::inclusive_scan(&weights);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = dmbs_matrix::prefix::upper_bound(&cumulative, rng.gen::<f64>() * total);
        let v = dmbs_matrix::prefix::upper_bound(&cumulative, rng.gen::<f64>() * total);
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Builds the 6-vertex example graph of Figure 1 in the paper
/// (N(1) = {0, 2, 4}, N(5) = {3, 4}), symmetric.
pub fn figure1_example() -> Graph {
    Graph::from_edges(
        6,
        &[
            (0, 1),
            (1, 0),
            (1, 2),
            (1, 4),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 4),
            (3, 5),
            (4, 1),
            (4, 3),
            (4, 5),
            (5, 3),
            (5, 4),
        ],
    )
    .expect("static edge list is valid")
}

/// Builds a directed cycle on `n` vertices.
///
/// # Errors
///
/// Returns [`GraphError::InvalidConfig`] if `n == 0`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidConfig("cycle requires at least one vertex".into()));
    }
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges)
}

/// Builds the complete directed graph (no self loops) on `n` vertices.
///
/// # Errors
///
/// Returns [`GraphError::InvalidConfig`] if `n == 0`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidConfig(
            "complete graph requires at least one vertex".into(),
        ));
    }
    let mut edges = Vec::with_capacity(n * (n - 1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Builds a star graph: vertex 0 connects to and from every other vertex.
///
/// # Errors
///
/// Returns [`GraphError::InvalidConfig`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidConfig("star graph requires at least two vertices".into()));
    }
    let mut edges = Vec::with_capacity(2 * (n - 1));
    for v in 1..n {
        edges.push((0, v));
        edges.push((v, 0));
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rmat_shape_and_determinism() {
        let cfg = RmatConfig::new(8, 8);
        let g1 = rmat(&cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        let g2 = rmat(&cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(g1.num_vertices(), 256);
        assert!(g1.num_edges() > 0);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.adjacency(), g2.adjacency());
    }

    #[test]
    fn rmat_symmetric_has_symmetric_adjacency() {
        let cfg = RmatConfig::new(6, 4).symmetric();
        let g = rmat(&cfg, &mut StdRng::seed_from_u64(5)).unwrap();
        let a = g.adjacency();
        let t = a.transpose();
        assert_eq!(a, &t);
    }

    #[test]
    fn rmat_is_skewed() {
        // R-MAT should produce a heavier tail than the average degree.
        let cfg = RmatConfig::new(10, 8);
        let g = rmat(&cfg, &mut StdRng::seed_from_u64(11)).unwrap();
        assert!(g.max_degree() as f64 > 4.0 * g.average_degree());
    }

    #[test]
    fn rmat_invalid_configs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(rmat(&RmatConfig { scale: 0, ..RmatConfig::new(1, 1) }, &mut rng).is_err());
        assert!(rmat(&RmatConfig { edge_factor: 0, ..RmatConfig::new(4, 1) }, &mut rng).is_err());
        let bad = RmatConfig { a: 0.9, b: 0.2, c: 0.2, ..RmatConfig::new(4, 2) };
        assert!(rmat(&bad, &mut rng).is_err());
    }

    #[test]
    fn erdos_renyi_degree_close_to_target() {
        let cfg = ErdosRenyiConfig { num_vertices: 2000, average_degree: 10.0 };
        let g = erdos_renyi(&cfg, &mut StdRng::seed_from_u64(7)).unwrap();
        let avg = g.average_degree();
        assert!((avg - 10.0).abs() < 1.5, "average degree {avg} too far from 10");
    }

    #[test]
    fn erdos_renyi_zero_degree() {
        let cfg = ErdosRenyiConfig { num_vertices: 10, average_degree: 0.0 };
        let g = erdos_renyi(&cfg, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn erdos_renyi_invalid() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(erdos_renyi(&ErdosRenyiConfig { num_vertices: 0, average_degree: 1.0 }, &mut rng)
            .is_err());
        assert!(erdos_renyi(&ErdosRenyiConfig { num_vertices: 4, average_degree: 4.0 }, &mut rng)
            .is_err());
        assert!(erdos_renyi(&ErdosRenyiConfig { num_vertices: 4, average_degree: -1.0 }, &mut rng)
            .is_err());
    }

    #[test]
    fn chung_lu_power_law_skew() {
        let cfg = ChungLuConfig { num_vertices: 1000, average_degree: 8.0, exponent: 2.2 };
        let g = chung_lu(&cfg, &mut StdRng::seed_from_u64(13)).unwrap();
        assert!(g.num_edges() > 0);
        // Power-law graphs concentrate edges on low-index (heavy) vertices.
        assert!(g.out_degree(0) > g.average_degree() as usize);
    }

    #[test]
    fn chung_lu_invalid() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(chung_lu(
            &ChungLuConfig { num_vertices: 0, average_degree: 1.0, exponent: 2.0 },
            &mut rng
        )
        .is_err());
        assert!(chung_lu(
            &ChungLuConfig { num_vertices: 4, average_degree: 0.0, exponent: 2.0 },
            &mut rng
        )
        .is_err());
        assert!(chung_lu(
            &ChungLuConfig { num_vertices: 4, average_degree: 1.0, exponent: 1.0 },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn figure1_matches_paper_neighborhoods() {
        let g = figure1_example();
        assert_eq!(g.neighbors(1), &[0, 2, 4]);
        assert_eq!(g.neighbors(5), &[3, 4]);
        assert_eq!(g.num_edges(), 14);
    }

    #[test]
    fn deterministic_families() {
        let c = cycle(5).unwrap();
        assert_eq!(c.num_edges(), 5);
        assert_eq!(c.neighbors(4), &[0]);
        assert!(cycle(0).is_err());

        let k = complete(4).unwrap();
        assert_eq!(k.num_edges(), 12);
        assert!(complete(0).is_err());

        let s = star(5).unwrap();
        assert_eq!(s.out_degree(0), 4);
        assert_eq!(s.out_degree(3), 1);
        assert!(star(1).is_err());
    }
}

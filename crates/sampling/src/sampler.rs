//! The sampler abstraction (Algorithm 1 of the paper) and bulk-sampling
//! configuration.

use crate::plan::{BulkSampleOutput, MinibatchSample};
use crate::{Result, SamplingError};
use dmbs_comm::{Communicator, ProcessGrid};
use dmbs_graph::partition::OneDPartition;
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::CsrMatrix;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Configuration of the bulk sampling step (§4.1.4, §6.1).
///
/// `batch_size` is `b` and `bulk_size` is `k`: the number of minibatches whose
/// `Q`, `P` and `A^l` matrices are vertically stacked and processed by a
/// single sequence of matrix operations.  `parallelism` is the shared-memory
/// worker count those matrix operations (SpGEMM, per-row ITS) run with, and
/// `workspace_reuse` controls whether they draw their scratch (dense
/// accumulators, marker arrays, column masks) from the thread-local
/// [`dmbs_matrix::workspace::SpgemmWorkspace`] reused across layers,
/// minibatches and epochs.  Neither knob changes *what* is sampled, only how
/// fast (the kernels are byte-identical under every setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BulkSamplerConfig {
    /// Minibatch size `b`.
    pub batch_size: usize,
    /// Number of minibatches `k` sampled in one bulk operation.
    pub bulk_size: usize,
    /// Shared-memory parallelism of the bulk matrix kernels (default:
    /// serial).
    pub parallelism: Parallelism,
    /// Reuse the thread-local SpGEMM/extraction workspace across kernel
    /// calls (default: `true`).  Disable to bound kernel scratch memory to a
    /// single call at the cost of per-call allocation.
    pub workspace_reuse: bool,
}

impl BulkSamplerConfig {
    /// Creates a configuration with batch size `b` and bulk minibatch count
    /// `k`, running the matrix kernels serially with workspace reuse on.
    /// Use [`BulkSamplerConfig::validate`] (or any `sample_bulk` call, which
    /// validates implicitly) to reject zero values.
    pub fn new(batch_size: usize, bulk_size: usize) -> Self {
        BulkSamplerConfig {
            batch_size,
            bulk_size,
            parallelism: Parallelism::serial(),
            workspace_reuse: true,
        }
    }

    /// Returns this configuration with kernel workspace reuse switched on or
    /// off.  Byte-identical either way — see the
    /// `bulk_output_is_invariant_under_workspace_reuse` test.
    ///
    /// # Example
    ///
    /// ```
    /// use dmbs_sampling::BulkSamplerConfig;
    ///
    /// let bulk = BulkSamplerConfig::new(1024, 4).with_workspace_reuse(false);
    /// assert!(!bulk.workspace_reuse);
    /// ```
    pub fn with_workspace_reuse(mut self, reuse: bool) -> Self {
        self.workspace_reuse = reuse;
        self
    }

    /// Returns this configuration with the bulk matrix kernels (SpGEMM,
    /// per-row ITS) running on `parallelism` worker threads.
    ///
    /// # Example
    ///
    /// ```
    /// use dmbs_matrix::pool::Parallelism;
    /// use dmbs_sampling::BulkSamplerConfig;
    ///
    /// let bulk = BulkSamplerConfig::new(1024, 4).with_parallelism(Parallelism::new(8));
    /// assert_eq!(bulk.parallelism.threads(), 8);
    /// ```
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Rejects zero `batch_size` / `bulk_size` with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidBulkConfig`] naming the zero field.
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(SamplingError::InvalidBulkConfig { field: "batch_size" });
        }
        if self.bulk_size == 0 {
            return Err(SamplingError::InvalidBulkConfig { field: "bulk_size" });
        }
        Ok(())
    }
}

impl Default for BulkSamplerConfig {
    fn default() -> Self {
        // The paper's GraphSAGE defaults (Table 4): b = 1024; k is chosen per
        // run, 1 bulk group by default.
        BulkSamplerConfig::new(1024, 1)
    }
}

/// A GNN minibatch sampling algorithm expressed through the matrix framework
/// of Algorithm 1.
///
/// Implementations provide the sampler-specific pieces (the structure of
/// `Q^L`, the `NORM` step and the `EXTRACT` step); the shared machinery (ITS
/// sampling, bulk stacking) lives in the implementations of
/// [`Sampler::sample_bulk`].
pub trait Sampler {
    /// Short human-readable name (used by benchmark output).
    fn name(&self) -> &'static str;

    /// Number of GNN layers the sampler produces adjacency matrices for.
    fn num_layers(&self) -> usize;

    /// The sampling parameter `s` used at sampling step `step`
    /// (`step = 0` expands the batch vertices, `step = num_layers() - 1` is
    /// the innermost expansion).
    fn fanout(&self, step: usize) -> usize;

    /// A serializable description from which an identical sampler can be
    /// rebuilt in another process (the Unix-socket transport ships specs,
    /// not objects).  `None` — the default — marks a sampler that cannot
    /// cross process boundaries; such samplers still work on every
    /// in-process backend.
    fn spec(&self) -> Option<crate::spec::SamplerSpec> {
        None
    }

    /// Samples the `L`-hop neighborhood of a single minibatch on a fully
    /// local adjacency matrix.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SamplingError::InvalidConfig`] if the batch is empty
    /// or references vertices outside the graph.
    fn sample_minibatch(
        &self,
        adjacency: &CsrMatrix,
        batch: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<MinibatchSample>;

    /// Samples `batches.len()` minibatches in bulk by stacking their sampler
    /// matrices (Equation 1 of the paper) and running the matrix pipeline
    /// once per layer.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SamplingError::InvalidBulkConfig`] for zero `config`
    /// fields, and [`crate::SamplingError::InvalidConfig`] if any batch is
    /// empty or references vertices outside the graph.
    fn sample_bulk(
        &self,
        adjacency: &CsrMatrix,
        batches: &[Vec<usize>],
        config: &BulkSamplerConfig,
        rng: &mut dyn RngCore,
    ) -> Result<BulkSampleOutput>;

    /// Samples this rank's process row's minibatches against a 1.5D
    /// graph-partitioned adjacency matrix (§5.2, Algorithm 2), from inside an
    /// SPMD region.  Called by
    /// [`Partitioned1p5dBackend`](crate::backend::Partitioned1p5dBackend) so
    /// that the backend stays generic over the sampling algorithm; every rank
    /// of the grid must participate with a consistent [`PartitionedContext`].
    ///
    /// The default implementation reports that the sampler has no
    /// graph-partitioned formulation.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::UnsupportedBackend`] by default; overriding
    /// samplers propagate configuration and collective errors.
    fn sample_partitioned(&self, ctx: &mut PartitionedContext<'_>) -> Result<BulkSampleOutput> {
        let _ = ctx;
        Err(SamplingError::UnsupportedBackend {
            sampler: self.name(),
            backend: "graph-partitioned-1.5d",
        })
    }
}

/// Everything a sampler needs to run its graph-partitioned formulation on one
/// rank of the `p/c × c` process grid: the communicator, the grid geometry,
/// this process row's block of `A`, the vertex partition, the minibatches
/// owned by this process row and the epoch seed.
#[derive(Debug)]
pub struct PartitionedContext<'a> {
    /// Communicator of the executing rank.
    pub comm: &'a mut Communicator,
    /// The `p/c × c` process grid.
    pub grid: &'a ProcessGrid,
    /// The block row of the adjacency matrix owned by this rank's process
    /// row.
    pub my_a_block: &'a CsrMatrix,
    /// 1D partition of the graph's vertices into `p/c` block rows.
    pub vertex_partition: &'a OneDPartition,
    /// The minibatches owned by this rank's process row.
    pub my_batches: &'a [Vec<usize>],
    /// Seed shared by every rank; samplers derive per-process-row streams
    /// from it so sampling stays replicated within a process row.
    pub seed: u64,
    /// Shared-memory parallelism of this rank's local matrix kernels.
    pub parallelism: Parallelism,
    /// Whether this rank's local kernels reuse the thread-local scratch
    /// workspace (see [`BulkSamplerConfig::workspace_reuse`]).
    pub workspace_reuse: bool,
}

/// Validates that every batch is non-empty and references vertices inside the
/// graph.  Shared by all sampler implementations.
pub(crate) fn validate_batches(batches: &[Vec<usize>], num_vertices: usize) -> Result<()> {
    if batches.is_empty() {
        return Err(crate::SamplingError::InvalidConfig("at least one batch is required".into()));
    }
    for (i, batch) in batches.iter().enumerate() {
        if batch.is_empty() {
            return Err(crate::SamplingError::InvalidConfig(format!("batch {i} is empty")));
        }
        if let Some(&bad) = batch.iter().find(|&&v| v >= num_vertices) {
            return Err(crate::SamplingError::InvalidConfig(format!(
                "batch {i} references vertex {bad} outside the graph ({num_vertices} vertices)"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let c = BulkSamplerConfig::new(512, 8);
        assert_eq!(c.batch_size, 512);
        assert_eq!(c.bulk_size, 8);
        let d = BulkSamplerConfig::default();
        assert_eq!(d.batch_size, 1024);
        assert_eq!(d.bulk_size, 1);
    }

    #[test]
    fn batch_validation() {
        assert!(validate_batches(&[], 10).is_err());
        assert!(validate_batches(&[vec![]], 10).is_err());
        assert!(validate_batches(&[vec![1, 11]], 10).is_err());
        assert!(validate_batches(&[vec![0, 9], vec![3]], 10).is_ok());
    }
}

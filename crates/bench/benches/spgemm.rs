//! Criterion micro-benchmark: the SpGEMM kernels behind probability
//! generation (`P ← Q·A`) for GraphSAGE- and LADIES-shaped left operands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmbs_graph::generators::{rmat, RmatConfig};
use dmbs_matrix::ops::{indicator_row, row_selection_matrix, vstack};
use dmbs_matrix::spgemm::spgemm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_spgemm(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("spgemm");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let graph = rmat(&RmatConfig::new(11, 16), &mut rng).expect("generator");
    let a = graph.adjacency();
    let n = a.rows();

    for &batch in &[64usize, 256] {
        // GraphSAGE-shaped Q: one nonzero per row (a stacked frontier).
        let frontier: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..n)).collect();
        let q_sage = row_selection_matrix(&frontier, n).expect("selection");
        group.bench_with_input(BenchmarkId::new("graphsage_QA", batch), &batch, |bench, _| {
            bench.iter(|| spgemm(&q_sage, a).expect("spgemm"));
        });

        // LADIES-shaped Q: k indicator rows with `batch` nonzeros each.
        let rows: Vec<_> = (0..8)
            .map(|_| {
                let mut verts: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..n)).collect();
                verts.sort_unstable();
                verts.dedup();
                indicator_row(&verts, n).expect("indicator")
            })
            .collect();
        let q_ladies = vstack(&rows).expect("stack");
        group.bench_with_input(BenchmarkId::new("ladies_QA", batch), &batch, |bench, _| {
            bench.iter(|| spgemm(&q_ladies, a).expect("spgemm"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);

//! Row-major dense matrices.
//!
//! The GNN substrate (`dmbs-gnn`) uses dense matrices for embeddings, weights
//! and gradients.  Only the kernels needed there are implemented: GEMM,
//! transpose, element-wise maps, row reductions, row gather/scatter and a few
//! utility constructors.

use crate::error::MatrixError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f64` values.
///
/// # Example
///
/// ```
/// use dmbs_matrix::DenseMatrix;
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = DenseMatrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        DenseMatrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if rows have differing
    /// lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(MatrixError::InvalidStructure(format!(
                    "row {i} has length {} but expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix { rows: rows.len(), cols, data })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidStructure(format!(
                "buffer length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random_uniform<R: rand::Rng + ?Sized>(
        rows: usize,
        cols: usize,
        scale: f64,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "dense index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "dense index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "dense matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order for cache friendliness on row-major data.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += aik * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self^T * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `self.rows() != rhs.rows()`.
    pub fn transpose_matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "dense transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let aki = self.data[k * self.cols + i];
                if aki == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += aki * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self * rhs^T`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `self.cols() != rhs.cols()`.
    pub fn matmul_transpose(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "dense matmul_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let brow = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow.iter()) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.shape() != rhs.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "dense add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Ok(DenseMatrix { rows: self.rows, cols: self.cols, data })
    }

    /// In-place element-wise `self += alpha * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f64, rhs: &DenseMatrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "dense axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a new matrix with `f` applied to each entry.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to each entry in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if shapes differ.
    pub fn hadamard(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.shape() != rhs.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "dense hadamard",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Ok(DenseMatrix { rows: self.rows, cols: self.cols, data })
    }

    /// Multiplies every entry by `alpha` and returns the result.
    pub fn scale(&self, alpha: f64) -> DenseMatrix {
        self.map(|v| v * alpha)
    }

    /// Horizontally concatenates `self` with `rhs` (`[self | rhs]`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if row counts differ.
    pub fn hstack(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "dense hstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(rhs.row(i));
        }
        Ok(DenseMatrix { rows: self.rows, cols, data })
    }

    /// Splits the matrix into `[left | right]` at column `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at > cols`.
    pub fn hsplit(&self, at: usize) -> (DenseMatrix, DenseMatrix) {
        assert!(at <= self.cols, "split column out of range");
        let mut left = DenseMatrix::zeros(self.rows, at);
        let mut right = DenseMatrix::zeros(self.rows, self.cols - at);
        for i in 0..self.rows {
            left.row_mut(i).copy_from_slice(&self.row(i)[..at]);
            right.row_mut(i).copy_from_slice(&self.row(i)[at..]);
        }
        (left, right)
    }

    /// Gathers the given rows into a new matrix (duplicates allowed).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if any index is out of range.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    row: src,
                    col: 0,
                    rows: self.rows,
                    cols: self.cols,
                });
            }
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(out)
    }

    /// Vertically stacks a list of matrices with identical column counts.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if column counts differ.
    pub fn vstack(parts: &[DenseMatrix]) -> Result<DenseMatrix> {
        if parts.is_empty() {
            return Ok(DenseMatrix::zeros(0, 0));
        }
        let cols = parts[0].cols;
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            if p.cols != cols {
                return Err(MatrixError::DimensionMismatch {
                    op: "dense vstack",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            data.extend_from_slice(&p.data);
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Sum over every entry.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-row sums as a vector of length `rows`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Per-column mean as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (m, v) in means.iter_mut().zip(self.row(i)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Index of the maximum entry in each row (`argmax`), used for
    /// classification decisions.
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Approximate equality within `tol` (same shape, max absolute difference).
    pub fn approx_eq(&self, rhs: &DenseMatrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self.data.iter().zip(&rhs.data).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Number of bytes required to store the matrix values.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl Default for DenseMatrix {
    fn default() -> Self {
        DenseMatrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = sample();
        let i = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = sample();
        let b = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, DenseMatrix::from_rows(&[vec![4.0, 5.0], vec![10.0, 11.0]]).unwrap());
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = sample();
        let b = DenseMatrix::zeros(2, 2);
        assert!(matches!(a.matmul(&b), Err(MatrixError::DimensionMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = DenseMatrix::random_uniform(4, 3, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(4, 5, 1.0, &mut rng);
        let direct = a.transpose().matmul(&b).unwrap();
        let fused = a.transpose_matmul(&b).unwrap();
        assert!(direct.approx_eq(&fused, 1e-12));
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = DenseMatrix::random_uniform(4, 3, 1.0, &mut rng);
        let b = DenseMatrix::random_uniform(5, 3, 1.0, &mut rng);
        let direct = a.matmul(&b.transpose()).unwrap();
        let fused = a.matmul_transpose(&b).unwrap();
        assert!(direct.approx_eq(&fused, 1e-12));
    }

    #[test]
    fn add_and_axpy() {
        let a = sample();
        let b = sample();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.get(1, 2), 12.0);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.get(0, 0), 3.0);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = sample();
        let h = a.hadamard(&a).unwrap();
        assert_eq!(h.get(1, 1), 25.0);
        assert_eq!(a.scale(2.0).get(0, 2), 6.0);
    }

    #[test]
    fn hstack_hsplit_roundtrip() {
        let a = sample();
        let b = sample();
        let stacked = a.hstack(&b).unwrap();
        assert_eq!(stacked.shape(), (2, 6));
        let (l, r) = stacked.hsplit(3);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn gather_rows_and_out_of_bounds() {
        let a = sample();
        let g = a.gather_rows(&[1, 0, 1]).unwrap();
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), a.row(1));
        assert!(a.gather_rows(&[5]).is_err());
    }

    #[test]
    fn vstack_shapes() {
        let a = sample();
        let v = DenseMatrix::vstack(&[a.clone(), a.clone()]).unwrap();
        assert_eq!(v.shape(), (4, 3));
        let bad = DenseMatrix::zeros(1, 2);
        assert!(DenseMatrix::vstack(&[a, bad]).is_err());
    }

    #[test]
    fn reductions() {
        let a = sample();
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.row_sums(), vec![6.0, 15.0]);
        assert_eq!(a.col_means(), vec![2.5, 3.5, 4.5]);
        assert!((a.frobenius_norm() - (91.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn row_argmax_picks_first_max() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 3.0, 3.0], vec![5.0, 2.0, 1.0]]).unwrap();
        assert_eq!(a.row_argmax(), vec![1, 0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn from_rows_validates_lengths() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn random_uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DenseMatrix::random_uniform(10, 10, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5));
    }
}

//! # dmbs-matrix
//!
//! Sparse and dense matrix substrate used by the `dmbs` (Distributed
//! Matrix-Based Sampling) reproduction of *Distributed Matrix-Based Sampling
//! for Graph Neural Network Training* (MLSys 2024).
//!
//! The paper expresses GNN minibatch sampling as sparse matrix products
//! (SpGEMM) between a sampler matrix `Q` and the graph adjacency matrix `A`,
//! followed by row-wise normalization, row-wise inverse-transform sampling and
//! row/column extraction.  This crate provides everything those steps need:
//!
//! * [`CooMatrix`], [`CsrMatrix`] and [`CscMatrix`] sparse formats with
//!   conversions between them,
//! * a hash-based row-wise (Gustavson) SpGEMM ([`spgemm::spgemm`]) standing in
//!   for cuSPARSE / nsparse,
//! * structure-aware extraction kernels ([`extract`]) that compute the
//!   selection-matrix products (`Q_R · A`, `A · Q_C`) as a row gather and a
//!   masked column filter, byte-identical to their SpGEMM formulation,
//! * a reusable kernel scratch ([`workspace::SpgemmWorkspace`]) so repeated
//!   products and extractions stop reallocating their accumulators,
//! * sparse × dense SpMM ([`spmm::spmm`]) used by neighborhood aggregation,
//! * structural operators (vertical stacking, block-diagonal composition,
//!   row/column extraction) used by bulk sampling,
//! * a small dense matrix type ([`DenseMatrix`]) with the GEMM/transpose/
//!   reduction kernels needed by the GNN training substrate,
//! * a delta overlay ([`DeltaCsr`]) holding batched edge inserts/deletes
//!   ([`DeltaBatch`]) merged lazily into a rebuilt base — the substrate of
//!   dynamic-graph ingest,
//! * prefix sums used by inverse transform sampling,
//! * a scoped worker pool ([`pool`]) with a [`Parallelism`] knob driving the
//!   deterministic row-blocked parallel kernels
//!   ([`spgemm::spgemm_parallel`], [`spmm::spmm_parallel`]).
//!
//! All numeric values are `f64`.  Indices are `usize` throughout; shapes are
//! validated eagerly and dimension mismatches are reported through
//! [`MatrixError`] rather than panics wherever a caller could reasonably trip
//! them with untrusted input.
//!
//! # Example
//!
//! ```
//! use dmbs_matrix::{CooMatrix, CsrMatrix, spgemm::spgemm};
//!
//! # fn main() -> Result<(), dmbs_matrix::MatrixError> {
//! // Build the example graph from Figure 1 of the paper.
//! let mut coo = CooMatrix::new(6, 6);
//! for &(r, c) in &[(0usize, 1usize), (1, 0), (1, 2), (1, 4), (2, 1), (2, 3),
//!                  (3, 2), (3, 4), (3, 5), (4, 1), (4, 3), (4, 5), (5, 3), (5, 4)] {
//!     coo.push(r, c, 1.0)?;
//! }
//! let a = CsrMatrix::from_coo(&coo);
//!
//! // Q^L for a minibatch {1, 5}: one nonzero per row (GraphSAGE construction).
//! let mut q = CooMatrix::new(2, 6);
//! q.push(0, 1, 1.0)?;
//! q.push(1, 5, 1.0)?;
//! let q = CsrMatrix::from_coo(&q);
//!
//! // P = Q * A has one probability distribution (row) per batch vertex.
//! let p = spgemm(&q, &a)?;
//! assert_eq!(p.shape(), (2, 6));
//! assert_eq!(p.row_nnz(0), 3); // vertex 1 has neighbors {0, 2, 4}
//! assert_eq!(p.row_nnz(1), 2); // vertex 5 has neighbors {2, 3}
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod delta;
pub mod dense;
pub mod error;
pub mod extract;
pub mod ops;
pub mod pool;
pub mod prefix;
pub mod spgemm;
pub mod spmm;
pub mod workspace;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use delta::{DeltaBatch, DeltaCsr};
pub use dense::DenseMatrix;
pub use error::MatrixError;
pub use pool::Parallelism;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, MatrixError>;

//! LADIES layer-wise dependency sampling expressed as matrix operations
//! (§4.2).
//!
//! For one minibatch, `Q^L ∈ {0,1}^{1×n}` is a single indicator row with a
//! nonzero per batch vertex.  `P ← Q^L A` counts, per column, how many batch
//! vertices point at it (`e_v`); the LADIES `NORM` step squares these counts
//! and normalizes, giving `p_v = e_v² / Σ_u e_u²`.  ITS draws `s` distinct
//! vertices from this single distribution, and extraction keeps *every* edge
//! between the batch vertices and the sampled vertices via the row/column
//! extraction product `A_S ← Q_R · A · Q_C`.
//!
//! Bulk sampling stacks the indicator rows of `k` minibatches into a `k×n`
//! matrix for the probability step, stacks the `Q_R` matrices for row
//! extraction, and performs the column extraction as a batch of smaller
//! products, exactly as §4.2.4 / §8.2.2 describe.

use crate::its::sample_rows_par;
use crate::plan::{BulkSampleOutput, LayerSample, MinibatchSample};
use crate::sampler::{validate_batches, BulkSamplerConfig, PartitionedContext, Sampler};
use crate::{Result, SamplingError};
use dmbs_comm::{Phase, PhaseProfile};
use dmbs_matrix::extract::{extract_columns_masked_with, extract_rows_with};
use dmbs_matrix::spgemm::spgemm_parallel_with;
use dmbs_matrix::workspace::with_workspace;
use dmbs_matrix::{CooMatrix, CsrMatrix};
use rand::RngCore;

/// The LADIES layer-wise sampler.
///
/// # Example
///
/// ```
/// use dmbs_sampling::{LadiesSampler, Sampler};
/// use dmbs_graph::generators::figure1_example;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), dmbs_sampling::SamplingError> {
/// let sampler = LadiesSampler::new(1, 2);
/// let graph = figure1_example();
/// let mut rng = StdRng::seed_from_u64(3);
/// let sample = sampler.sample_minibatch(graph.adjacency(), &[1, 5], &mut rng)?;
/// // One layer, rows = batch, two sampled support vertices.
/// assert_eq!(sample.layers[0].rows, vec![1, 5]);
/// assert_eq!(sample.layers[0].cols.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadiesSampler {
    num_layers: usize,
    samples_per_layer: usize,
    include_previous: bool,
}

impl LadiesSampler {
    /// Creates a LADIES sampler with `num_layers` layers and `s` sampled
    /// vertices per layer.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or `samples_per_layer == 0`.
    pub fn new(num_layers: usize, samples_per_layer: usize) -> Self {
        assert!(num_layers > 0, "LADIES needs at least one layer");
        assert!(samples_per_layer > 0, "samples per layer must be positive");
        LadiesSampler { num_layers, samples_per_layer, include_previous: false }
    }

    /// Also includes the previous layer's vertices in each sampled vertex
    /// set, so that every layer's rows are a subset of its columns.  Needed
    /// by the GNN training substrate for the self connection; the original
    /// LADIES algorithm does the same ("including the nodes themselves").
    pub fn with_previous_included(mut self) -> Self {
        self.include_previous = true;
        self
    }

    /// Number of vertices sampled per layer.
    pub fn samples_per_layer(&self) -> usize {
        self.samples_per_layer
    }

    /// The LADIES probability law: square the aggregated-neighborhood counts
    /// and normalize each row, giving `p_v = e_v² / Σ_u e_u²` (§2.2.2).
    fn norm(p: &mut CsrMatrix) {
        p.map_values_inplace(|v| v * v);
        p.normalize_rows();
    }
}

impl Sampler for LadiesSampler {
    fn spec(&self) -> Option<crate::spec::SamplerSpec> {
        Some(crate::spec::SamplerSpec::Ladies {
            num_layers: self.num_layers,
            samples_per_layer: self.samples_per_layer,
            include_previous: self.include_previous,
        })
    }

    fn name(&self) -> &'static str {
        "ladies"
    }

    fn num_layers(&self) -> usize {
        self.num_layers
    }

    fn fanout(&self, _step: usize) -> usize {
        self.samples_per_layer
    }

    fn sample_minibatch(
        &self,
        adjacency: &CsrMatrix,
        batch: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<MinibatchSample> {
        let config = BulkSamplerConfig::new(batch.len(), 1);
        let mut out = self.sample_bulk(adjacency, &[batch.to_vec()], &config, rng)?;
        Ok(out.minibatches.remove(0))
    }

    fn sample_bulk(
        &self,
        adjacency: &CsrMatrix,
        batches: &[Vec<usize>],
        config: &BulkSamplerConfig,
        rng: &mut dyn RngCore,
    ) -> Result<BulkSampleOutput> {
        config.validate()?;
        let n = adjacency.rows();
        if adjacency.cols() != n {
            return Err(SamplingError::InvalidConfig("adjacency matrix must be square".into()));
        }
        validate_batches(batches, n)?;

        let k = batches.len();
        let parallelism = config.parallelism;
        let mut profile = PhaseProfile::new();
        // Current layer's row vertex set per minibatch (starts as the batch).
        let mut frontiers: Vec<Vec<usize>> = batches.to_vec();
        let mut layers: Vec<Vec<LayerSample>> = vec![Vec::new(); k];

        for _step in 0..self.num_layers {
            let s = self.samples_per_layer;

            // ---- Probability: stacked indicator matrix (one row per batch),
            // P = Q A, LADIES normalization.
            let p = profile.time_compute(Phase::Probability, || -> Result<CsrMatrix> {
                let mut coo = CooMatrix::new(k, n);
                for (i, frontier) in frontiers.iter().enumerate() {
                    let mut unique = frontier.clone();
                    unique.sort_unstable();
                    unique.dedup();
                    for v in unique {
                        coo.push(i, v, 1.0)?;
                    }
                }
                let q = CsrMatrix::from_coo(&coo);
                // The indicator rows carry several nonzeros each, so this is
                // a genuine SpGEMM (the general tier); the workspace keeps
                // its accumulators across layers and bulk groups.
                let mut p = with_workspace(config.workspace_reuse, |ws| {
                    spgemm_parallel_with(&q, adjacency, parallelism, ws)
                })?;
                Self::norm(&mut p);
                Ok(p)
            })?;

            // ---- Sampling: s distinct vertices per minibatch row, one
            // seeded RNG stream per row (thread-count invariant).
            let step_seed = rng.next_u64();
            let sampled = profile
                .time_compute(Phase::Sampling, || sample_rows_par(&p, s, step_seed, parallelism))?;

            // ---- Extraction: A_S = Q_R A Q_C per minibatch (§4.2.4,
            // §8.2.2).  Both factors are selection matrices, so neither pays
            // the general SpGEMM price: the stacked row extraction is a
            // parallel row gather and the per-batch column extraction is a
            // bitmap-masked filter, each byte-identical to the
            // selection-matrix SpGEMM it replaces (see dmbs_matrix::extract).
            profile.time_compute(Phase::Extraction, || -> Result<()> {
                // Stacked row gather: one output row per (batch, frontier
                // vertex), copying that vertex's row of A.
                let mut stacked_rows: Vec<usize> = Vec::new();
                let mut offsets: Vec<usize> = Vec::with_capacity(k + 1);
                offsets.push(0);
                for frontier in &frontiers {
                    stacked_rows.extend_from_slice(frontier);
                    offsets.push(stacked_rows.len());
                }
                let a_r = with_workspace(config.workspace_reuse, |ws| {
                    extract_rows_with(adjacency, &stacked_rows, parallelism, ws)
                })?;

                for (i, frontier) in frontiers.iter_mut().enumerate() {
                    let mut cols: Vec<usize> = sampled.row_indices(i).to_vec();
                    if self.include_previous {
                        for &v in frontier.iter() {
                            if !cols.contains(&v) {
                                cols.push(v);
                            }
                        }
                        cols.sort_unstable();
                    }
                    let block = a_r.row_block(offsets[i], offsets[i + 1]);
                    // Column extraction: masked filter renumbering into the
                    // sampled vertex space (replaces the hypersparse CSC
                    // selection SpGEMM of §8.2.2).
                    let a_s = with_workspace(config.workspace_reuse, |ws| {
                        extract_columns_masked_with(&block, &cols, ws)
                    })?;
                    layers[i].push(LayerSample::new(frontier.clone(), cols.clone(), a_s));
                    *frontier = cols;
                }
                Ok(())
            })?;
        }

        let minibatches = batches
            .iter()
            .zip(layers)
            .map(|(batch, mut batch_layers)| {
                batch_layers.reverse();
                MinibatchSample { batch: batch.clone(), layers: batch_layers }
            })
            .collect();

        Ok(BulkSampleOutput { minibatches, profile, comm_stats: Default::default() })
    }

    fn sample_partitioned(&self, ctx: &mut PartitionedContext<'_>) -> Result<BulkSampleOutput> {
        crate::partitioned::ladies_on_rank(
            ctx.comm,
            ctx.grid,
            ctx.my_a_block,
            ctx.vertex_partition,
            ctx.my_batches,
            self.num_layers,
            self.samples_per_layer,
            ctx.seed,
            ctx.parallelism,
            ctx.workspace_reuse,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmbs_graph::generators::{complete, figure1_example};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn adjacency() -> CsrMatrix {
        figure1_example().adjacency().clone()
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        LadiesSampler::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_samples_panics() {
        LadiesSampler::new(1, 0);
    }

    #[test]
    fn probability_law_matches_paper_example() {
        // Figure 2b: for batch {1, 5}, P (before sampling) must equal
        // [1/7, 0, 1/7, 1/7, 4/7, 0] after the squared normalization.
        let a = adjacency();
        let q = CsrMatrix::from_coo(
            &CooMatrix::from_triples(1, 6, vec![(0, 1, 1.0), (0, 5, 1.0)]).unwrap(),
        );
        let mut p = dmbs_matrix::spgemm::spgemm(&q, &a).unwrap();
        LadiesSampler::norm(&mut p);
        let expected = [1.0 / 7.0, 0.0, 1.0 / 7.0, 1.0 / 7.0, 4.0 / 7.0, 0.0];
        for (col, &want) in expected.iter().enumerate() {
            assert!((p.get(0, col) - want).abs() < 1e-12, "column {col}");
        }
    }

    #[test]
    fn sample_includes_every_batch_to_sampled_edge() {
        let a = adjacency();
        let sampler = LadiesSampler::new(1, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = sampler.sample_minibatch(&a, &[1, 5], &mut rng).unwrap();
        let layer = &sample.layers[0];
        assert_eq!(layer.rows, vec![1, 5]);
        assert_eq!(layer.cols.len(), 2);
        // Every edge between a batch vertex and a sampled vertex must appear.
        for (ri, &row_v) in layer.rows.iter().enumerate() {
            for (ci, &col_v) in layer.cols.iter().enumerate() {
                assert_eq!(
                    layer.adjacency.get(ri, ci),
                    a.get(row_v, col_v),
                    "edge ({row_v}, {col_v})"
                );
            }
        }
    }

    #[test]
    fn sampled_vertices_come_from_aggregated_neighborhood() {
        let a = adjacency();
        let sampler = LadiesSampler::new(1, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let sample = sampler.sample_minibatch(&a, &[1, 5], &mut rng).unwrap();
        // Aggregated neighborhood of {1, 5} is {0, 2, 3, 4}.
        for &c in &sample.layers[0].cols {
            assert!([0, 2, 3, 4].contains(&c), "vertex {c} not in aggregated neighborhood");
        }
    }

    #[test]
    fn heavy_vertex_is_sampled_most_often() {
        // Vertex 4 has probability 4/7 in the Figure 2b distribution; with
        // s = 1 it must be the most frequently sampled vertex.
        let a = adjacency();
        let sampler = LadiesSampler::new(1, 1);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let s = sampler.sample_minibatch(&a, &[1, 5], &mut rng).unwrap();
            *counts.entry(s.layers[0].cols[0]).or_insert(0) += 1;
        }
        let &top = counts.iter().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(top, 4);
        // And roughly 4/7 of the mass.
        let frac = counts[&4] as f64 / 2000.0;
        assert!((frac - 4.0 / 7.0).abs() < 0.06, "fraction {frac}");
    }

    #[test]
    fn multi_layer_ladies_chains_frontiers() {
        let g = complete(10).unwrap();
        let sampler = LadiesSampler::new(3, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let sample = sampler.sample_minibatch(g.adjacency(), &[0, 1, 2], &mut rng).unwrap();
        assert_eq!(sample.num_layers(), 3);
        assert!(sample.frontiers_are_chained());
        for layer in &sample.layers {
            assert!(layer.cols.len() <= 4 + layer.rows.len());
        }
    }

    #[test]
    fn include_previous_keeps_rows_in_cols() {
        let g = complete(10).unwrap();
        let sampler = LadiesSampler::new(2, 3).with_previous_included();
        let mut rng = StdRng::seed_from_u64(5);
        let sample = sampler.sample_minibatch(g.adjacency(), &[0, 1], &mut rng).unwrap();
        for layer in &sample.layers {
            for r in &layer.rows {
                assert!(layer.cols.contains(r));
            }
        }
    }

    #[test]
    fn bulk_sampling_keeps_batches_independent() {
        let a = adjacency();
        let sampler = LadiesSampler::new(1, 2);
        let batches = vec![vec![1, 5], vec![0, 2], vec![3, 4]];
        let mut rng = StdRng::seed_from_u64(6);
        let out =
            sampler.sample_bulk(&a, &batches, &BulkSamplerConfig::new(2, 3), &mut rng).unwrap();
        assert_eq!(out.num_batches(), 3);
        for (mb, batch) in out.minibatches.iter().zip(&batches) {
            assert_eq!(&mb.batch, batch);
            assert_eq!(&mb.layers[0].rows, batch);
            assert_eq!(mb.layers[0].cols.len(), 2);
        }
        assert!(out.profile.total_compute() > 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let a = adjacency();
        let sampler = LadiesSampler::new(1, 2);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(sampler.sample_bulk(&a, &[], &BulkSamplerConfig::default(), &mut rng).is_err());
        assert!(sampler
            .sample_bulk(&a, &[vec![99]], &BulkSamplerConfig::default(), &mut rng)
            .is_err());
        assert!(sampler
            .sample_bulk(
                &CsrMatrix::zeros(2, 3),
                &[vec![0]],
                &BulkSamplerConfig::default(),
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn trait_metadata() {
        let sampler = LadiesSampler::new(2, 512);
        assert_eq!(sampler.name(), "ladies");
        assert_eq!(sampler.num_layers(), 2);
        assert_eq!(sampler.fanout(0), 512);
        assert_eq!(sampler.samples_per_layer(), 512);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = adjacency();
        let sampler = LadiesSampler::new(1, 2);
        let s1 = sampler.sample_minibatch(&a, &[1, 5], &mut StdRng::seed_from_u64(9)).unwrap();
        let s2 = sampler.sample_minibatch(&a, &[1, 5], &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(s1, s2);
    }
}

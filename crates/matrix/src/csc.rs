//! Compressed Sparse Column (CSC) matrices.
//!
//! The paper notes (§8.2.2) that the LADIES column-extraction matrix is
//! hypersparse — it has `k·n` rows but only `k·s` nonzeros — which makes CSR
//! storage wasteful (the row-pointer array alone dominates).  CSC (or COO)
//! storage avoids that cost.  This module provides a minimal CSC type used to
//! represent such tall, hypersparse selection matrices, plus conversions to
//! and from CSR.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::prefix::counts_to_offsets;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A sparse matrix in Compressed Sparse Column format.
///
/// Column pointers, row indices within each column sorted and unique.
///
/// # Example
///
/// ```
/// use dmbs_matrix::{CooMatrix, CscMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), dmbs_matrix::MatrixError> {
/// let coo = CooMatrix::from_triples(4, 2, vec![(0, 1, 1.0), (3, 0, 2.0)])?;
/// let csc = CscMatrix::from_coo(&coo);
/// assert_eq!(csc.col_nnz(0), 1);
/// assert_eq!(csc.to_csr().get(3, 0), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Creates an empty (all-zero) `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CscMatrix { rows, cols, indptr: vec![0; cols + 1], indices: Vec::new(), values: Vec::new() }
    }

    /// Builds a CSC matrix from COO triples, summing duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        // Reuse the CSR builder on the transpose, then reinterpret.
        let csr_of_transpose = CsrMatrix::from_coo(&coo.transpose());
        CscMatrix {
            rows: coo.rows(),
            cols: coo.cols(),
            indptr: csr_of_transpose.indptr().to_vec(),
            indices: csr_of_transpose.indices().to_vec(),
            values: csr_of_transpose.values().to_vec(),
        }
    }

    /// Builds a CSC matrix from a CSR matrix.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let t = csr.transpose();
        CscMatrix {
            rows: csr.rows(),
            cols: csr.cols(),
            indptr: t.indptr().to_vec(),
            indices: t.indices().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Builds a selection matrix with exactly one nonzero (value 1.0) per
    /// column: column `j` selects row `rows_selected[j]`.  This is the
    /// `Q_C` column-extraction matrix of LADIES (§4.2.3).
    pub fn selection(rows: usize, rows_selected: &[usize]) -> Self {
        let cols = rows_selected.len();
        let counts = vec![1usize; cols];
        let indptr = counts_to_offsets(&counts);
        CscMatrix { rows, cols, indptr, indices: rows_selected.to_vec(), values: vec![1.0; cols] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Number of nonzeros in column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col_nnz(&self, c: usize) -> usize {
        assert!(c < self.cols, "column index out of bounds");
        self.indptr[c + 1] - self.indptr[c]
    }

    /// Row indices of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col_indices(&self, c: usize) -> &[usize] {
        assert!(c < self.cols, "column index out of bounds");
        &self.indices[self.indptr[c]..self.indptr[c + 1]]
    }

    /// Values of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col_values(&self, c: usize) -> &[f64] {
        assert!(c < self.cols, "column index out of bounds");
        &self.values[self.indptr[c]..self.indptr[c + 1]]
    }

    /// The column pointer array (`cols + 1` entries).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        // The stored arrays are the CSR form of the transpose.
        let csr_of_transpose = CsrMatrix::from_raw(
            self.cols,
            self.rows,
            self.indptr.clone(),
            self.indices.clone(),
            self.values.clone(),
        )
        .expect("CSC invariants imply a valid transposed CSR");
        csr_of_transpose.transpose()
    }

    /// Converts to COO triples.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for c in 0..self.cols {
            for (&r, &v) in self.col_indices(c).iter().zip(self.col_values(c)) {
                coo.push(r, c, v).expect("CSC invariants guarantee in-bounds indices");
            }
        }
        coo
    }

    /// Number of bytes required to store the CSC arrays.  Compare against
    /// [`CsrMatrix::nbytes`](crate::CsrMatrix::nbytes) of the same logical
    /// matrix to see the hypersparse storage argument from §8.2.2.
    pub fn nbytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Multiplies a CSR matrix by this CSC matrix (`lhs * self`), returning a
    /// CSR result.  Used for the LADIES column-extraction product `A_R · Q_C`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MatrixError::DimensionMismatch`] if
    /// `lhs.cols() != self.rows()`.
    pub fn left_multiply(&self, lhs: &CsrMatrix) -> Result<CsrMatrix> {
        if lhs.cols() != self.rows {
            return Err(crate::MatrixError::DimensionMismatch {
                op: "csr x csc multiply",
                lhs: lhs.shape(),
                rhs: self.shape(),
            });
        }
        let mut row_data: Vec<Vec<(usize, f64)>> = Vec::with_capacity(lhs.rows());
        for r in 0..lhs.rows() {
            let lhs_cols = lhs.row_indices(r);
            let lhs_vals = lhs.row_values(r);
            let mut row: Vec<(usize, f64)> = Vec::new();
            for c in 0..self.cols {
                // Dot product of sparse lhs row with sparse rhs column via merge.
                let rhs_rows = self.col_indices(c);
                let rhs_vals = self.col_values(c);
                let mut acc = 0.0;
                let (mut i, mut j) = (0usize, 0usize);
                while i < lhs_cols.len() && j < rhs_rows.len() {
                    match lhs_cols[i].cmp(&rhs_rows[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            acc += lhs_vals[i] * rhs_vals[j];
                            i += 1;
                            j += 1;
                        }
                    }
                }
                if acc != 0.0 {
                    row.push((c, acc));
                }
            }
            row_data.push(row);
        }
        CsrMatrix::from_rows(lhs.rows(), self.cols, row_data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_shape() {
        let m = CscMatrix::zeros(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn from_coo_and_back() {
        let coo =
            CooMatrix::from_triples(3, 3, vec![(0, 2, 1.0), (2, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let csc = CscMatrix::from_coo(&coo);
        assert_eq!(csc.nnz(), 3);
        assert_eq!(csc.col_indices(0), &[2]);
        assert_eq!(csc.col_values(1), &[3.0]);
        let back = CsrMatrix::from_coo(&csc.to_coo());
        assert_eq!(back, CsrMatrix::from_coo(&coo));
    }

    #[test]
    fn csr_csc_roundtrip() {
        let coo =
            CooMatrix::from_triples(4, 3, vec![(0, 1, 1.0), (3, 2, 4.0), (2, 0, -1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_csr(&csr);
        assert_eq!(csc.to_csr(), csr);
    }

    #[test]
    fn selection_matrix() {
        let sel = CscMatrix::selection(6, &[4, 0, 4]);
        assert_eq!(sel.shape(), (6, 3));
        assert_eq!(sel.nnz(), 3);
        assert_eq!(sel.col_indices(0), &[4]);
        assert_eq!(sel.col_indices(2), &[4]);
        // Multiplying the identity by a selection extracts columns.
        let identity = CsrMatrix::identity(6);
        let picked = sel.left_multiply(&identity).unwrap();
        assert_eq!(picked.shape(), (6, 3));
        assert_eq!(picked.get(4, 0), 1.0);
        assert_eq!(picked.get(0, 1), 1.0);
        assert_eq!(picked.get(4, 2), 1.0);
    }

    #[test]
    fn left_multiply_matches_dense() {
        let a = CooMatrix::from_triples(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let b = CooMatrix::from_triples(3, 2, vec![(0, 1, 4.0), (2, 0, 5.0), (1, 0, 6.0)]).unwrap();
        let a_csr = CsrMatrix::from_coo(&a);
        let b_csc = CscMatrix::from_coo(&b);
        let c = b_csc.left_multiply(&a_csr).unwrap();
        let expected = a_csr.to_dense().matmul(&b_csc.to_csr().to_dense()).unwrap();
        assert!(c.to_dense().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn left_multiply_dimension_mismatch() {
        let a = CsrMatrix::identity(3);
        let b = CscMatrix::zeros(4, 2);
        assert!(b.left_multiply(&a).is_err());
    }

    #[test]
    fn hypersparse_storage_is_smaller_than_csr() {
        // A 10_000 x 4 selection matrix with 4 nonzeros: CSC needs ~5 pointers,
        // CSR needs 10_001.
        let sel = CscMatrix::selection(10_000, &[17, 256, 999, 4321]);
        let as_csr = sel.to_csr();
        assert!(sel.nbytes() < as_csr.nbytes() / 100);
    }

    proptest! {
        #[test]
        fn prop_csr_csc_roundtrip(entries in proptest::collection::vec((0usize..8, 0usize..8, -3.0f64..3.0), 0..40)) {
            let coo = CooMatrix::from_triples(8, 8, entries).unwrap();
            let csr = CsrMatrix::from_coo(&coo);
            let csc = CscMatrix::from_csr(&csr);
            prop_assert_eq!(csc.to_csr(), csr.clone());
            prop_assert_eq!(csc.nnz(), csr.nnz());
        }
    }
}

//! Figure 5: Quiver with GPU-resident graph sampling vs UVA (host-memory)
//! sampling.
//!
//! The baseline per-vertex sampler is run under two memory models: device
//! resident (HBM access cost per touched adjacency row) and unified virtual
//! addressing (PCIe access cost).  The reported time is sampling time per
//! epoch-equivalent across rank counts; the gap shrinks as ranks increase,
//! which is the trend Figure 5 shows.

use dmbs_bench::{dataset, print_table, secs, Scale};
use dmbs_graph::datasets::DatasetKind;
use dmbs_graph::minibatch::MinibatchPlan;
use dmbs_sampling::baseline::{MemoryModel, PerVertexSageSampler};
use dmbs_sampling::{BulkSamplerConfig, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    for kind in [DatasetKind::Papers, DatasetKind::Protein] {
        let ds = dataset(kind, scale);
        let batch_size = (ds.train_set.len() / 8).clamp(8, 256);
        let plan =
            MinibatchPlan::sequential(&ds.train_set, batch_size).expect("non-empty training set");
        let batches = plan.batches().to_vec();
        let mut rows = Vec::new();
        for &p in &scale.rank_counts() {
            // Each rank samples its share of the minibatches; per-epoch time is
            // the slowest rank (they are identical here, so divide by p).
            let my_share: Vec<Vec<usize>> =
                batches.iter().take(batches.len().div_ceil(p)).cloned().collect();
            let config = BulkSamplerConfig::new(batch_size, my_share.len());

            let time_for = |memory: MemoryModel| -> f64 {
                let sampler = PerVertexSageSampler::new(vec![15, 10, 5]).with_memory_model(memory);
                let mut rng = StdRng::seed_from_u64(11);
                let out = sampler
                    .sample_bulk(ds.graph.adjacency(), &my_share, &config, &mut rng)
                    .expect("baseline sampling failed");
                out.profile.total_compute()
            };
            let gpu = time_for(MemoryModel::DeviceResident);
            let uva = time_for(MemoryModel::UnifiedVirtualAddressing);
            rows.push(vec![
                format!("{p}"),
                secs(gpu),
                secs(uva),
                format!("{:.2}x", uva / gpu.max(1e-12)),
            ]);
        }
        print_table(
            &format!(
                "Figure 5 — {} (Quiver-GPU vs Quiver-UVA sampling time per epoch)",
                kind.name()
            ),
            &["ranks", "gpu sampling", "uva sampling", "uva/gpu"],
            &rows,
        );
    }
    println!("\nThe paper's observation: GPU-resident sampling beats UVA sampling, and the gap narrows as ranks grow.");
}

//! Perf-trajectory harness for the shared-memory hot paths.
//!
//! Runs the parallelized kernels — SpGEMM (`P ← Q · A`), the structure-aware
//! extraction kernels (row gather / masked column filter vs the
//! selection-matrix SpGEMM formulation they replaced), per-row ITS
//! (`SAMPLE`), and two full bulk sampling epochs (GraphSAGE and LADIES)
//! through `LocalBackend` — at 1..N threads on a synthetic RMAT workload,
//! verifies that every result is byte-identical to its reference
//! formulation, and writes one JSON record file per bench
//! (`BENCH_spgemm.json`, `BENCH_extract.json`, `BENCH_its.json`,
//! `BENCH_epoch.json`, `BENCH_ladies_epoch.json`) with wall time,
//! throughput, speedup-vs-serial and — for the epoch benches — the
//! per-`Phase` breakdown (probability / sampling / extraction attributed
//! separately via `PhaseProfile`), so future PRs have a recorded trajectory
//! to beat.
//!
//! Seven further sweeps ride on the same harness: `--fetch` measures the
//! communication-avoiding feature pipeline (`BENCH_fetch.json`),
//! `--compress` measures the wire codecs on the feature-fetch lanes
//! (`BENCH_compress.json`: per (shape × codec) the exact byte books —
//! `bytes_on_wire + bytes_saved == bytes_on_wire(exact)` asserted in-sweep —
//! the ×1000-scaled bytes reduction with its fp16 ≥ 1.9× / int8 ≥ 3.5×
//! floors, the worst-case row quantization error, and a small training run
//! per codec pinning the loss delta vs exact),
//! `--overlap` measures the software-pipelined distributed training
//! schedule against the synchronous one (`BENCH_overlap.json`: modeled
//! epoch seconds, hidden α–β time, words unchanged), `--serve` drives
//! the inference tier with a Zipf open-loop request trace across QPS ×
//! coalescing-window cells (`BENCH_serve.json`: p50/p99/p999 modeled
//! latency, sustained throughput, coalescing factor, hot-tier hit rate,
//! shed counts — every counter replayed twice and asserted identical), and
//! `--calibrate` measures the real multi-process Unix-socket transport
//! against the in-process simulator (`BENCH_transport.json`: a ping-pong
//! probe fits the socket's actual α and β, then each grid shape trains the
//! same session on both transports, asserts bit-identical losses and
//! counters, and records modeled vs measured epoch seconds), and
//! `--dynamic` measures the delta-CSR ingest path (`BENCH_dynamic.json`:
//! lazy-overlay vs eager-rebuild apply throughput with the compacted CSRs
//! asserted byte-identical, then per grid shape a training run with a live
//! ingest schedule under both ingest modes and both invalidation policies —
//! losses and counters bit-identical across modes, the double-entry
//! invalidation books recorded exactly, and the refetch words precise
//! invalidation avoids vs the flush-all baseline pinned), and
//! `--autotune` runs the cost-model-driven auto-tuner offline
//! (`BENCH_autotune.json`: per grid shape, probe epochs fit a
//! `TuningModel`, the lossless and lossy-admitted grids are searched, and
//! the default / chosen / lossy-chosen schedules are realized with full
//! training runs — chosen realized epoch seconds asserted no worse than the
//! default's, epoch-0 books asserted equal to the prediction
//! counter-for-counter, and `builder().auto()` asserted bit-identical to
//! the offline search).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin perf_baseline \
//!     [--smoke] [--fetch | --compress | --overlap | --serve | --calibrate | \
//!      --dynamic | --autotune] \
//!     [--check <baseline-dir>] [--tolerance <rel>] [output_dir]
//! ```
//!
//! `output_dir` defaults to the current directory.  `--smoke` shrinks the
//! workload to a seconds-long CI-sized run that still sweeps every kernel
//! and asserts every byte-identity contract — the regression tripwire wired
//! into the CI workflow.  `--check <dir>` is the CI perf-regression gate: it
//! compares the JSONs this invocation wrote against the committed baselines
//! in `<dir>` (`ci/baseline/` in CI) — kernel byte-identity and the modeled
//! words/messages counters hard-fail on any drift, wall clock soft-warns
//! beyond `--tolerance` (relative, default `0.5`).  `DMBS_SCALE=large`
//! roughly quadruples the workload; `DMBS_PERF_THREADS` (comma-separated,
//! default `1,2,4,8`) overrides the thread sweep.

use dmbs_bench::stats::{time_best, LatencySummary};
use dmbs_comm::{Codec, Group, Phase, ProcessGrid, Runtime};
use dmbs_gnn::{FeatureCache, FeatureCacheConfig, FeatureStore};
use dmbs_graph::generators::{rmat, RmatConfig};
use dmbs_matrix::extract::{extract_columns_masked, extract_rows};
use dmbs_matrix::ops::row_selection_matrix;
use dmbs_matrix::pool::Parallelism;
use dmbs_matrix::spgemm::{spgemm, spgemm_parallel};
use dmbs_matrix::{CscMatrix, CsrMatrix, DenseMatrix};
use dmbs_sampling::its::{sample_rows_par, sample_rows_seeded};
use dmbs_sampling::{
    BulkSamplerConfig, FetchPlan, GraphSageSampler, LadiesSampler, LocalBackend, MinibatchSample,
    Sampler, SamplingBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One measured configuration of one kernel.
struct Record {
    threads: usize,
    wall_s: f64,
    throughput: f64,
    speedup: f64,
    identical: bool,
    /// Optional per-phase compute-seconds breakdown (epoch benches).
    phases: Vec<(&'static str, f64)>,
}

/// One measured configuration of an extraction kernel against its SpGEMM
/// formulation.
struct ExtractRecord {
    kernel: &'static str,
    threads: usize,
    /// Wall time of the structure-aware kernel.
    wall_s: f64,
    /// Wall time of the selection-matrix SpGEMM formulation it replaced.
    spgemm_wall_s: f64,
    /// Nonzeros this kernel's run touches (its throughput numerator).
    items: usize,
    identical: bool,
}

/// Workload description embedded in each JSON file.
struct Workload {
    name: &'static str,
    detail: String,
    /// Work items per run — nonzeros touched for the matrix kernels,
    /// minibatches for the epochs — used for the throughput field.
    items: usize,
    throughput_unit: &'static str,
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6e}")
    } else {
        "null".to_string()
    }
}

/// The header fields shared by every BENCH JSON file; keep the schema of
/// the whole `BENCH_*.json` family in one place.
fn json_header(workload: &Workload) -> String {
    format!(
        "{{\n  \"bench\": \"{}\",\n  \"workload\": \"{}\",\n  \"items_per_run\": {},\n  \
         \"throughput_unit\": \"{}\",\n  \"host_threads\": {},\n",
        workload.name,
        workload.detail,
        workload.items,
        workload.throughput_unit,
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    )
}

fn write_json(path: &std::path::Path, workload: &Workload, records: &[Record]) {
    let mut out = json_header(workload);
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let phases = if r.phases.is_empty() {
            String::new()
        } else {
            let fields: Vec<String> = r
                .phases
                .iter()
                .map(|(name, secs)| format!("\"{name}\": {}", json_f64(*secs)))
                .collect();
            format!(", \"phase_compute_s\": {{{}}}", fields.join(", "))
        };
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_s\": {}, \"throughput\": {}, \
             \"speedup_vs_serial\": {}, \"identical_to_serial\": {}{}}}{}\n",
            r.threads,
            json_f64(r.wall_s),
            json_f64(r.throughput),
            json_f64(r.speedup),
            r.identical,
            phases,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn write_extract_json(path: &std::path::Path, workload: &Workload, records: &[ExtractRecord]) {
    let mut out = json_header(workload);
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        // Each record carries its own `items` (the two kernels process
        // different nnz counts), so `throughput == items / wall_s` holds
        // per record; the header's `items_per_run` is the combined total.
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"threads\": {}, \"wall_s\": {}, \"items\": {}, \
             \"throughput\": {}, \"spgemm_formulation_wall_s\": {}, \
             \"speedup_vs_spgemm_formulation\": {}, \"identical_to_spgemm_formulation\": {}}}{}\n",
            r.kernel,
            r.threads,
            json_f64(r.wall_s),
            r.items,
            json_f64(r.items as f64 / r.wall_s),
            json_f64(r.spgemm_wall_s),
            json_f64(r.spgemm_wall_s / r.wall_s),
            r.identical,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

/// Turns raw `(threads, wall, identical, phases)` measurements into records.
/// The speedup baseline is the 1-thread wall, which [`thread_sweep`]
/// guarantees is always measured; it runs the serial code path inside the
/// same measurement loop as the other thread counts (measuring the baseline
/// in a separate earlier phase proved systematically biased).
#[allow(clippy::type_complexity)]
fn finish_records(
    walls: &[(usize, f64, bool, Vec<(&'static str, f64)>)],
    throughput: impl Fn(f64) -> f64,
) -> Vec<Record> {
    let baseline = walls
        .iter()
        .find(|&&(t, _, _, _)| t == 1)
        .map(|&(_, wall, _, _)| wall)
        .expect("thread_sweep always includes 1");
    walls
        .iter()
        .map(|(t, wall, identical, phases)| Record {
            threads: *t,
            wall_s: *wall,
            throughput: throughput(*wall),
            speedup: baseline / wall,
            identical: *identical,
            phases: phases.clone(),
        })
        .collect()
}

/// The thread counts to measure.  Always contains `1` (the serial speedup
/// baseline); an unparsable or empty `DMBS_PERF_THREADS` falls back to the
/// given default sweep rather than silently producing empty BENCH records.
fn thread_sweep(default: &[usize]) -> Vec<usize> {
    let mut sweep: Vec<usize> = match std::env::var("DMBS_PERF_THREADS") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|t| t.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .collect(),
        Err(_) => default.to_vec(),
    };
    if sweep.is_empty() {
        eprintln!("DMBS_PERF_THREADS parsed to an empty sweep; using the default {default:?}");
        sweep = default.to_vec();
    }
    if !sweep.contains(&1) {
        sweep.insert(0, 1);
    }
    sweep
}

/// Fails the run when any parallel result diverged from the serial kernel —
/// the determinism contract the committed BENCH files advertise.  Called
/// after the JSON is written so the diverging record is preserved on disk.
fn assert_identical(bench: &str, records: &[Record]) {
    for r in records {
        assert!(
            r.identical,
            "{bench}: parallel output at {} threads diverged from the serial kernel",
            r.threads
        );
    }
}

fn print_records(title: &str, unit: &str, records: &[Record]) {
    println!("\n== {title} ==");
    println!("{:>7}  {:>12}  {:>14}  {:>8}  identical", "threads", "wall_s", unit, "speedup");
    for r in records {
        println!(
            "{:>7}  {:>12.6}  {:>14.3e}  {:>7.2}x  {}",
            r.threads, r.wall_s, r.throughput, r.speedup, r.identical
        );
    }
}

fn print_extract_records(title: &str, records: &[ExtractRecord]) {
    println!("\n== {title} ==");
    println!(
        "{:>12}  {:>7}  {:>12}  {:>14}  {:>10}  identical",
        "kernel", "threads", "wall_s", "spgemm_wall_s", "speedup"
    );
    for r in records {
        println!(
            "{:>12}  {:>7}  {:>12.6}  {:>14.6}  {:>9.2}x  {}",
            r.kernel,
            r.threads,
            r.wall_s,
            r.spgemm_wall_s,
            r.spgemm_wall_s / r.wall_s,
            r.identical
        );
    }
}

/// Per-phase compute seconds of an epoch, in display order.
fn phase_breakdown(profile: &dmbs_comm::PhaseProfile) -> Vec<(&'static str, f64)> {
    Phase::sampling_phases().iter().map(|&p| (p.name(), profile.compute(p))).collect()
}

/// One measured (grid shape × cache mode) configuration of the feature-fetch
/// sweep.
struct FetchRecord {
    p: usize,
    c: usize,
    mode: &'static str,
    wall_s: f64,
    /// All-to-allv words this mode moved over the whole epoch (all ranks).
    words_per_epoch: usize,
    messages: usize,
    cache_hits: usize,
    cache_misses: usize,
    words_saved: usize,
    /// `words_per_epoch(uncached) / words_per_epoch(this mode)`.
    reduction_vs_uncached: f64,
    identical: bool,
}

impl FetchRecord {
    /// The record's hit rate through the one canonical implementation
    /// (`CommStats::cache_hit_rate`), so the JSON, the table and the library
    /// can never disagree on the formula.
    fn hit_rate(&self) -> Option<f64> {
        dmbs_comm::CommStats {
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            ..Default::default()
        }
        .cache_hit_rate()
    }
}

fn write_fetch_json(path: &std::path::Path, workload: &Workload, records: &[FetchRecord]) {
    let mut out = json_header(workload);
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let hit_rate = r.hit_rate().unwrap_or(f64::NAN); // json_f64: NaN → null
        out.push_str(&format!(
            "    {{\"p\": {}, \"c\": {}, \"mode\": \"{}\", \"wall_s\": {}, \
             \"words_per_epoch\": {}, \"messages\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"cache_hit_rate\": {}, \"words_saved\": {}, \
             \"reduction_vs_uncached\": {}, \"identical_to_uncached\": {}}}{}\n",
            r.p,
            r.c,
            r.mode,
            json_f64(r.wall_s),
            r.words_per_epoch,
            r.messages,
            r.cache_hits,
            r.cache_misses,
            json_f64(hit_rate),
            r.words_saved,
            json_f64(r.reduction_vs_uncached),
            r.identical,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn print_fetch_records(records: &[FetchRecord]) {
    println!("\n== Feature-fetch epoch: words moved, cache on vs off ==");
    println!(
        "{:>3} {:>3} {:>9}  {:>12}  {:>10}  {:>9}  {:>9}  {:>9}  identical",
        "p", "c", "mode", "words/epoch", "messages", "hit_rate", "saved", "reduction"
    );
    for r in records {
        let hit_rate = r.hit_rate().map_or("-".to_string(), |h| format!("{h:.3}"));
        println!(
            "{:>3} {:>3} {:>9}  {:>12}  {:>10}  {:>9}  {:>9}  {:>8.2}x  {}",
            r.p,
            r.c,
            r.mode,
            r.words_per_epoch,
            r.messages,
            hit_rate,
            r.words_saved,
            r.reduction_vs_uncached,
            r.identical
        );
    }
}

/// The feature-fetching phase of one epoch, run standalone on a simulated
/// grid: each rank fetches the layer-0 frontiers of its round-robin share of
/// the epoch's minibatches, step by step (bulk synchronous, empty requests
/// for idle ranks — exactly the distributed trainer's schedule).  Returns
/// per-rank fetched rows plus the summed communication counters.
#[allow(clippy::type_complexity)]
fn run_fetch_epoch(
    runtime: &Runtime,
    h: &DenseMatrix,
    minibatches: &[MinibatchSample],
    c: usize,
    mode: FeatureCacheConfig,
) -> (Vec<Vec<DenseMatrix>>, usize, usize, usize, usize, usize) {
    let p = runtime.size();
    let steps = minibatches.len().div_ceil(p);
    let outs = runtime
        .run(|comm| {
            let rank = comm.rank();
            let grid = ProcessGrid::new(p, c).expect("valid grid");
            let (my_row, _) = grid.coords(rank);
            let store = FeatureStore::from_full(h, grid.rows(), my_row).expect("store");
            let group = Group::new(&grid.col_ranks(rank)).expect("group");
            let my_mbs: Vec<&MinibatchSample> = minibatches.iter().skip(rank).step_by(p).collect();
            let mut cache = mode.is_enabled().then(|| FeatureCache::new(mode, store.feature_dim()));
            if let (Some(cache), FeatureCacheConfig::EpochPinned) = (cache.as_mut(), mode) {
                let plan = FetchPlan::from_sample_iter(my_mbs.iter().copied());
                cache.prefetch(&store, comm, &group, plan.unique_vertices()).expect("prefetch");
            }
            let mut fetched = Vec::with_capacity(my_mbs.len());
            for step in 0..steps {
                let wanted: Vec<usize> =
                    my_mbs.get(step).map(|mb| mb.input_vertices().to_vec()).unwrap_or_default();
                let rows = match cache.as_mut() {
                    Some(cache) if mode == FeatureCacheConfig::EpochPinned => {
                        cache.gather_pinned(&store, &wanted).expect("gather")
                    }
                    Some(cache) => {
                        cache.fetch_through(&store, comm, &group, &wanted).expect("fetch")
                    }
                    None => store.fetch(comm, &group, &wanted).expect("fetch"),
                };
                if step < my_mbs.len() {
                    fetched.push(rows);
                }
            }
            let cache_stats = cache.map(|c| *c.stats()).unwrap_or_default();
            (fetched, cache_stats)
        })
        .expect("fetch epoch");
    let mut per_rank = Vec::with_capacity(outs.len());
    let (mut words, mut messages, mut hits, mut misses, mut saved) = (0, 0, 0, 0, 0);
    for o in outs {
        words += o.stats.words_sent;
        messages += o.stats.messages;
        hits += o.value.1.cache_hits;
        misses += o.value.1.cache_misses;
        saved += o.value.1.words_saved;
        per_rank.push(o.value.0);
    }
    (per_rank, words, messages, hits, misses, saved)
}

const USAGE: &str = "usage: perf_baseline [--smoke] [--fetch | --compress | --overlap | \
                     --serve | --calibrate | --dynamic | --autotune] [--check <baseline-dir>] \
                     [--tolerance <rel>] [output_dir]";

fn main() {
    // The --calibrate sweep re-executes this binary as its rank processes;
    // if the rendezvous environment is set, run the worker and exit before
    // any argument parsing or sweeping.
    dmbs_comm::run_if_worker(&dmbs_bench::transport::registry());
    let mut smoke = false;
    let mut fetch_only = false;
    let mut compress_only = false;
    let mut overlap_only = false;
    let mut serve_only = false;
    let mut calibrate_only = false;
    let mut dynamic_only = false;
    let mut autotune_only = false;
    let mut check_dir: Option<std::path::PathBuf> = None;
    let mut tolerance = 0.5;
    let mut out_dir = std::path::PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--fetch" {
            fetch_only = true;
        } else if arg == "--compress" {
            compress_only = true;
        } else if arg == "--overlap" {
            overlap_only = true;
        } else if arg == "--serve" {
            serve_only = true;
        } else if arg == "--calibrate" {
            calibrate_only = true;
        } else if arg == "--dynamic" {
            dynamic_only = true;
        } else if arg == "--autotune" {
            autotune_only = true;
        } else if arg == "--check" {
            let Some(dir) = args.next() else {
                eprintln!("--check needs a baseline directory; {USAGE}");
                std::process::exit(2);
            };
            check_dir = Some(std::path::PathBuf::from(dir));
        } else if arg == "--tolerance" {
            let parsed = args.next().and_then(|t| t.parse::<f64>().ok()).filter(|t| *t >= 0.0);
            let Some(parsed) = parsed else {
                eprintln!("--tolerance needs a non-negative relative value; {USAGE}");
                std::process::exit(2);
            };
            tolerance = parsed;
        } else if arg.starts_with("--") {
            // Reject unknown flags up front instead of running the full
            // multi-minute sweep and panicking at the first JSON write.
            eprintln!("unknown flag {arg:?}; {USAGE}");
            std::process::exit(2);
        } else {
            out_dir = std::path::PathBuf::from(arg);
        }
    }
    if [
        fetch_only,
        compress_only,
        overlap_only,
        serve_only,
        calibrate_only,
        dynamic_only,
        autotune_only,
    ]
    .iter()
    .filter(|&&f| f)
    .count()
        > 1
    {
        // The sweeps are exclusive; silently running only one of them would
        // leave the other's BENCH file stale while --check reports success.
        eprintln!(
            "--fetch, --compress, --overlap, --serve, --calibrate, --dynamic and --autotune \
             are mutually exclusive; {USAGE}"
        );
        std::process::exit(2);
    }
    if let Some(baseline_dir) = &check_dir {
        // Guard BEFORE the sweep runs: writing the fresh JSONs into the
        // baseline directory would clobber the committed baseline and then
        // compare the files against themselves (a vacuous pass).
        let same_dir = match (baseline_dir.canonicalize(), out_dir.canonicalize()) {
            (Ok(a), Ok(b)) => a == b,
            _ => *baseline_dir == out_dir,
        };
        if same_dir {
            eprintln!(
                "--check baseline directory {} is also the output directory; the sweep would \
                 overwrite the baseline before comparing.  Pass a different output_dir.",
                baseline_dir.display()
            );
            std::process::exit(2);
        }
    }
    // The sweep (which also decides which files --check compares).
    let produced: &[&str] = if fetch_only {
        run_fetch_sweep(smoke, &out_dir);
        &["BENCH_fetch.json"]
    } else if compress_only {
        run_compress_sweep(smoke, &out_dir);
        &["BENCH_compress.json"]
    } else if overlap_only {
        run_overlap_sweep(smoke, &out_dir);
        &["BENCH_overlap.json"]
    } else if serve_only {
        run_serve_sweep(smoke, &out_dir);
        &["BENCH_serve.json"]
    } else if calibrate_only {
        run_calibrate_sweep(smoke, &out_dir);
        &["BENCH_transport.json"]
    } else if dynamic_only {
        run_dynamic_sweep(smoke, &out_dir);
        &["BENCH_dynamic.json"]
    } else if autotune_only {
        run_autotune_sweep(smoke, &out_dir);
        &["BENCH_autotune.json"]
    } else {
        run_kernel_sweeps(smoke, &out_dir);
        &[
            "BENCH_spgemm.json",
            "BENCH_extract.json",
            "BENCH_its.json",
            "BENCH_epoch.json",
            "BENCH_ladies_epoch.json",
        ]
    };
    if let Some(baseline_dir) = check_dir {
        run_check(&baseline_dir, &out_dir, produced, tolerance);
    }
}

/// The `--check` gate: compare the files this invocation produced against
/// the committed baselines.  Hard findings (kernel-identity or exact-counter
/// drift) fail the process; wall-clock findings only warn.
fn run_check(
    baseline_dir: &std::path::Path,
    fresh_dir: &std::path::Path,
    files: &[&str],
    tolerance: f64,
) {
    use dmbs_bench::check::{compare_file, passes, Severity};
    println!(
        "\n== perf-regression check vs {} (wall tolerance {:.0}%) ==",
        baseline_dir.display(),
        tolerance * 100.0
    );
    let mut all = Vec::new();
    for file in files {
        all.extend(compare_file(baseline_dir, fresh_dir, file, tolerance));
    }
    for finding in &all {
        match finding.severity {
            Severity::Hard => eprintln!("FAIL {}", finding.message),
            Severity::Soft => eprintln!("warn {}", finding.message),
        }
    }
    if passes(&all) {
        println!(
            "check passed: {} file(s), {} soft warning(s), no hard regressions",
            files.len(),
            all.len()
        );
    } else {
        eprintln!("check FAILED: a committed perf contract regressed (see FAIL lines above)");
        std::process::exit(1);
    }
}

fn run_kernel_sweeps(smoke: bool, out_dir: &std::path::Path) {
    let large = matches!(std::env::var("DMBS_SCALE").as_deref(), Ok("large") | Ok("LARGE"));
    // (rmat scale, rmat degree, stacked Q rows, timing reps, batch size,
    // batches per epoch)
    let (scale, degree, q_rows, reps, batch_size, num_batches) = if smoke {
        (8, 8, 1024, 1, 64, 4)
    } else if large {
        (15, 20, 131_072, 5, 256, 16)
    } else {
        (13, 16, 32_768, 3, 256, 16)
    };
    let threads = if smoke { thread_sweep(&[1, 2]) } else { thread_sweep(&[1, 2, 4, 8]) };
    if smoke {
        println!("smoke mode: tiny workload, full kernel sweep + identity checks");
    }

    // ---- Shared synthetic workload: an RMAT graph and a stacked Q of
    // frontier rows, the shape of the paper's P ← Q^l · A probability step.
    let graph = rmat(&RmatConfig::new(scale, degree), &mut StdRng::seed_from_u64(99))
        .expect("valid RMAT config");
    let a = graph.adjacency().clone();
    let n = a.rows();
    let stacked: Vec<usize> = (0..q_rows).map(|i| (i * 2_654_435_761) % n).collect();
    let q = row_selection_matrix(&stacked, n).expect("valid selection");

    // ---- SpGEMM: P = Q · A at each thread count.  The serial reference is
    // computed once (untimed) for the byte-identity check; the speedup
    // baseline is the *timed* 1-thread record, which runs the identical
    // serial code path inside the same measurement loop (measuring the
    // baseline in a separate earlier phase proved systematically biased).
    let serial_p = spgemm(&q, &a).expect("spgemm");
    let flops: usize = stacked.iter().map(|&v| a.row_nnz(v)).sum();
    let mut walls = Vec::new();
    for &t in &threads {
        let par = Parallelism::new(t);
        let (wall, p) = time_best(reps, || spgemm_parallel(&q, &a, par).expect("spgemm_parallel"));
        walls.push((t, wall, p == serial_p, Vec::new()));
    }
    let records = finish_records(&walls, |wall| flops as f64 / wall);
    let workload = Workload {
        name: "spgemm",
        detail: format!(
            "P = Q*A, rmat scale {scale} deg {degree} (n = {n}, nnz(A) = {}), Q = {q_rows} \
             stacked frontier rows",
            a.nnz()
        ),
        items: flops,
        throughput_unit: "multiply-adds/s",
    };
    print_records("SpGEMM P = Q*A", "flops/s", &records);
    write_json(&out_dir.join("BENCH_spgemm.json"), &workload, &records);
    assert_identical("spgemm", &records);

    // ---- Extraction kernels vs their selection-matrix SpGEMM formulation.
    // Row gather: extract_rows(A, stacked) vs spgemm(row_selection, A) — the
    // exact product LADIES row extraction and the GraphSAGE probability step
    // used to pay Gustavson prices for.  Column filter: per-batch masked
    // extraction vs the hypersparse CSC selection SpGEMM of §8.2.2.
    let gathered_nnz = serial_p.nnz();
    let mut extract_records = Vec::new();
    for &t in &threads {
        let par = Parallelism::new(t);
        let (gather_wall, gathered) =
            time_best(reps, || extract_rows(&a, &stacked, par).expect("extract_rows"));
        let (spgemm_wall, via_spgemm) =
            time_best(reps, || spgemm_parallel(&q, &a, par).expect("spgemm_parallel"));
        extract_records.push(ExtractRecord {
            kernel: "row_gather",
            threads: t,
            wall_s: gather_wall,
            spgemm_wall_s: spgemm_wall,
            items: gathered_nnz,
            identical: gathered == via_spgemm && gathered == serial_p,
        });
    }
    // Column extraction on LADIES-shaped per-batch blocks: k blocks of
    // `batch_size` gathered rows, each filtered down to `s` sampled columns.
    let col_k = num_batches;
    let col_s = if smoke { 64 } else { 512 };
    let block_rows = batch_size;
    let blocks: Vec<CsrMatrix> = (0..col_k)
        .map(|i| {
            let rows: Vec<usize> = (0..block_rows).map(|j| (i * block_rows + j * 13) % n).collect();
            extract_rows(&a, &rows, Parallelism::serial()).expect("block gather")
        })
        .collect();
    let col_lists: Vec<Vec<usize>> = (0..col_k)
        .map(|i| {
            let mut cols: Vec<usize> = (0..col_s).map(|j| (i * 7 + j * 97) % n).collect();
            cols.sort_unstable();
            cols.dedup();
            cols
        })
        .collect();
    let filter_nnz: usize = blocks.iter().map(CsrMatrix::nnz).sum();
    let (mask_wall, masked) = time_best(reps, || {
        blocks
            .iter()
            .zip(&col_lists)
            .map(|(block, cols)| extract_columns_masked(block, cols).expect("masked filter"))
            .collect::<Vec<_>>()
    });
    let (csc_wall, via_csc) = time_best(reps, || {
        blocks
            .iter()
            .zip(&col_lists)
            .map(|(block, cols)| {
                CscMatrix::selection(n, cols).left_multiply(block).expect("csc spgemm")
            })
            .collect::<Vec<_>>()
    });
    extract_records.push(ExtractRecord {
        kernel: "column_mask",
        threads: 1,
        wall_s: mask_wall,
        spgemm_wall_s: csc_wall,
        items: filter_nnz,
        identical: masked == via_csc,
    });
    let workload = Workload {
        name: "extract",
        detail: format!(
            "row gather of {q_rows} frontier rows (nnz = {gathered_nnz}) + masked column \
             filter of {col_k} blocks of {block_rows} rows down to {col_s} columns (nnz in = \
             {filter_nnz}), vs the selection-matrix SpGEMM formulation, rmat scale {scale} \
             deg {degree}"
        ),
        items: gathered_nnz + filter_nnz,
        throughput_unit: "nnz/s",
    };
    print_extract_records("Extraction kernels vs SpGEMM formulation", &extract_records);
    write_extract_json(&out_dir.join("BENCH_extract.json"), &workload, &extract_records);
    for r in &extract_records {
        assert!(
            r.identical,
            "extract: {} at {} threads diverged from the SpGEMM formulation",
            r.kernel, r.threads
        );
    }

    // ---- Per-row ITS over the normalized probability rows.
    let mut p_norm = serial_p.clone();
    p_norm.normalize_rows();
    let fanout = 10;
    let its_serial = sample_rows_seeded(&p_norm, fanout, 4242).expect("its");
    let mut walls = Vec::new();
    for &t in &threads {
        let par = Parallelism::new(t);
        let (wall, sampled) =
            time_best(reps, || sample_rows_par(&p_norm, fanout, 4242, par).expect("its par"));
        walls.push((t, wall, sampled == its_serial, Vec::new()));
    }
    let records = finish_records(&walls, |wall| p_norm.rows() as f64 / wall);
    let workload = Workload {
        name: "its",
        detail: format!(
            "per-row ITS without replacement, s = {fanout}, over {} probability rows \
             (nnz(P) = {})",
            p_norm.rows(),
            p_norm.nnz()
        ),
        items: p_norm.rows(),
        throughput_unit: "rows/s",
    };
    print_records("Per-row ITS", "rows/s", &records);
    write_json(&out_dir.join("BENCH_its.json"), &workload, &records);
    assert_identical("its", &records);

    // ---- Bulk epochs through LocalBackend: GraphSAGE and the full LADIES
    // pipeline (probability SpGEMM → ITS → gather + masked column filter),
    // with extraction attributed to its own PhaseProfile phase.
    let batches: Vec<Vec<usize>> = (0..num_batches)
        .map(|i| (0..batch_size).map(|j| (i * batch_size + j * 7) % n).collect())
        .collect();
    let run_epoch = |sampler: &dyn SamplerEpoch, t: usize| {
        let backend = LocalBackend::new(BulkSamplerConfig::new(batch_size, 4))
            .expect("valid bulk config")
            .with_parallelism(Parallelism::new(t));
        sampler.epoch(&backend, &a, &batches)
    };

    let sage = GraphSageSampler::new(if smoke { vec![5, 5] } else { vec![15, 10, 5] });
    let ladies = LadiesSampler::new(if smoke { 2 } else { 3 }, if smoke { 64 } else { 512 });
    for (file, title, name, sampler) in [
        (
            "BENCH_epoch.json",
            "Bulk sampling epoch (GraphSAGE)",
            "bulk_epoch",
            &sage as &dyn SamplerEpoch,
        ),
        (
            "BENCH_ladies_epoch.json",
            "Bulk sampling epoch (LADIES)",
            "ladies_bulk_epoch",
            &ladies as &dyn SamplerEpoch,
        ),
    ] {
        let epoch_serial = run_epoch(sampler, 1);
        let mut walls = Vec::new();
        for &t in &threads {
            let (wall, epoch) = time_best(reps, || run_epoch(sampler, t));
            let identical = epoch.0 == epoch_serial.0;
            walls.push((t, wall, identical, phase_breakdown(&epoch.1)));
        }
        let records = finish_records(&walls, |wall| num_batches as f64 / wall);
        let workload = Workload {
            name,
            detail: format!(
                "{} bulk epoch via LocalBackend: {num_batches} batches of {batch_size} on \
                 rmat scale {scale} (bulk k = 4)",
                sampler.describe()
            ),
            items: num_batches,
            throughput_unit: "minibatches/s",
        };
        print_records(title, "batches/s", &records);
        write_json(&out_dir.join(file), &workload, &records);
        assert_identical(name, &records);
    }

    println!(
        "\nAll kernels byte-identical to their reference formulations; records written to {}",
        out_dir.display()
    );
}

/// The `--fetch` sweep: the feature-fetching phase of one bulk-sampled epoch
/// across grid shapes, cache-off vs epoch-pinned vs LRU, asserting that every
/// cached run returns byte-identical rows, moves no more all-to-allv words
/// than the uncached baseline, and that `sent + saved == uncached` (the α–β
/// books balance).  Writes `BENCH_fetch.json`.
fn run_fetch_sweep(smoke: bool, out_dir: &std::path::Path) {
    // (rmat scale, rmat degree, feature dim, batch size, batches, fanouts)
    let (scale, degree, f, batch_size, num_batches, fanouts) =
        if smoke { (8, 8, 16, 64, 8, vec![5, 5]) } else { (12, 12, 64, 256, 16, vec![10, 5]) };
    let shapes: &[(usize, usize)] =
        if smoke { &[(2, 1), (2, 2), (4, 2)] } else { &[(4, 1), (4, 2), (4, 4), (8, 2), (8, 4)] };
    if smoke {
        println!("fetch smoke mode: tiny workload, full shape sweep + identity checks");
    }

    let graph = rmat(&RmatConfig::new(scale, degree), &mut StdRng::seed_from_u64(99))
        .expect("valid RMAT config");
    let a = graph.adjacency().clone();
    let n = a.rows();
    let h = DenseMatrix::from_rows(
        &(0..n)
            .map(|v| (0..f).map(|j| ((v * 31 + j * 7) % 1000) as f64 * 1e-3).collect())
            .collect::<Vec<_>>(),
    )
    .expect("feature matrix");
    let batches: Vec<Vec<usize>> = (0..num_batches)
        .map(|i| (0..batch_size).map(|j| (i * batch_size + j * 7) % n).collect())
        .collect();
    // One bulk-sampled epoch, shared by every shape: the fetch phase is what
    // varies, not the samples.
    let sampler = GraphSageSampler::new(fanouts.clone());
    let backend = LocalBackend::new(BulkSamplerConfig::new(batch_size, 4)).expect("bulk config");
    let epoch = backend.sample_epoch(&sampler, &a, &batches, 7).expect("epoch");
    let minibatches = epoch.output.minibatches;
    let plan = FetchPlan::from_minibatches(&minibatches);
    println!(
        "epoch frontier: {} raw input-vertex requests, {} unique ({} duplicates, ≤ {} words \
         avoidable at f = {f})",
        plan.total_requests(),
        plan.unique_len(),
        plan.duplicate_requests(),
        plan.words_avoided_upper_bound(f)
    );

    let mut records = Vec::new();
    for &(p, c) in shapes {
        let runtime = Runtime::new(p).expect("runtime");
        // How the plan's unique rows spread over the owning feature blocks
        // (the block rows of the p/c × c layout) — the request-balance view
        // of the owner-block grouping the all-to-allv rides on.
        let block_partition =
            dmbs_graph::partition::OneDPartition::new(n, p / c).expect("partition");
        let per_block = plan.by_owner_block(&block_partition).expect("plan in range");
        let block_lens: Vec<usize> = per_block.iter().map(Vec::len).collect();
        println!(
            "p={p} c={c}: plan rows per owner block: min {} max {} (of {} blocks)",
            block_lens.iter().min().unwrap(),
            block_lens.iter().max().unwrap(),
            block_lens.len()
        );
        // `time_best` returns the (deterministic) epoch output, so one sweep
        // yields wall time, counters and the identity reference together.
        let reps = if smoke { 1 } else { 3 };
        let (base_wall, (base_rows, base_words, base_msgs, ..)) = time_best(reps, || {
            run_fetch_epoch(&runtime, &h, &minibatches, c, FeatureCacheConfig::Off)
        });
        records.push(FetchRecord {
            p,
            c,
            mode: "uncached",
            wall_s: base_wall,
            words_per_epoch: base_words,
            messages: base_msgs,
            cache_hits: 0,
            cache_misses: 0,
            words_saved: 0,
            reduction_vs_uncached: 1.0,
            identical: true,
        });
        let lru_budget = n * f * std::mem::size_of::<f64>() / 4; // a quarter of H
        for (mode, label) in [
            (FeatureCacheConfig::EpochPinned, "pinned"),
            (FeatureCacheConfig::Lru { byte_budget: lru_budget }, "lru"),
        ] {
            let (wall, (rows, words, msgs, hits, misses, saved)) =
                time_best(reps, || run_fetch_epoch(&runtime, &h, &minibatches, c, mode));
            let identical = rows == base_rows;
            assert!(identical, "p={p} c={c} {label}: cached fetch diverged from uncached");
            assert!(
                words <= base_words,
                "p={p} c={c} {label}: cache moved more words ({words} > {base_words})"
            );
            assert_eq!(
                words + saved,
                base_words,
                "p={p} c={c} {label}: sent + saved must equal the uncached bill"
            );
            records.push(FetchRecord {
                p,
                c,
                mode: label,
                wall_s: wall,
                words_per_epoch: words,
                messages: msgs,
                cache_hits: hits,
                cache_misses: misses,
                words_saved: saved,
                // A fully-replicated shape moves zero words either way.
                reduction_vs_uncached: if base_words == 0 {
                    1.0
                } else {
                    base_words as f64 / words.max(1) as f64
                },
                identical,
            });
        }
    }

    let workload = Workload {
        name: "fetch_epoch",
        detail: format!(
            "feature-fetch phase of one GraphSAGE {fanouts:?} bulk epoch ({num_batches} batches \
             of {batch_size}, f = {f}) on rmat scale {scale} deg {degree}; \
             {} raw requests, {} unique",
            plan.total_requests(),
            plan.unique_len()
        ),
        items: plan.total_requests(),
        throughput_unit: "requests/epoch",
    };
    print_fetch_records(&records);
    write_fetch_json(&out_dir.join("BENCH_fetch.json"), &workload, &records);
    println!("\nAll cached fetches byte-identical to the uncached all-to-allv baseline.");
}

/// One measured (grid shape × codec) configuration of the wire-compression
/// sweep.  `mode` distinguishes the standalone feature-fetch replay
/// (`"fetch"`) from the small end-to-end training run (`"train"`).
struct CompressRecord {
    p: usize,
    c: usize,
    mode: &'static str,
    codec: &'static str,
    wall_s: f64,
    /// All-to-allv words this run moved (all ranks) — codec-independent by
    /// contract, so the CI gate pins it exactly.
    words_per_epoch: usize,
    messages: usize,
    /// Bytes the codec actually put on the wire (all ranks).
    bytes_on_wire: usize,
    /// Bytes avoided vs the exact encoding; by construction
    /// `bytes_on_wire + bytes_saved == bytes_on_wire(exact)`.
    bytes_saved: usize,
    /// `⌊1000 · bytes_on_wire(exact) / bytes_on_wire⌋` — an integer so the
    /// CI gate compares it exactly (1000 ⇔ 1.0×).
    bytes_reduction_x1000: usize,
    /// Worst `|decoded − exact|` over every fetched row (fetch rows only;
    /// NaN → null on train rows).
    max_abs_err: f64,
    /// Final-epoch mean loss (train rows only; NaN → null on fetch rows).
    final_loss: f64,
    /// `|final_loss − final_loss(exact)|` (train rows only).
    loss_delta_vs_exact: f64,
    /// Codecs change byte encodings, never the schedule: same words and
    /// messages as the exact run.
    identical_to_exact_schedule: bool,
}

fn write_compress_json(path: &std::path::Path, workload: &Workload, records: &[CompressRecord]) {
    let mut out = json_header(workload);
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"p\": {}, \"c\": {}, \"mode\": \"{}\", \"codec\": \"{}\", \"wall_s\": {}, \
             \"words_per_epoch\": {}, \"messages\": {}, \"bytes_on_wire\": {}, \
             \"bytes_saved\": {}, \"bytes_reduction_x1000\": {}, \"max_abs_err\": {}, \
             \"final_loss\": {}, \"loss_delta_vs_exact\": {}, \
             \"identical_to_exact_schedule\": {}}}{}\n",
            r.p,
            r.c,
            r.mode,
            r.codec,
            json_f64(r.wall_s),
            r.words_per_epoch,
            r.messages,
            r.bytes_on_wire,
            r.bytes_saved,
            r.bytes_reduction_x1000,
            json_f64(r.max_abs_err),
            json_f64(r.final_loss),
            json_f64(r.loss_delta_vs_exact),
            r.identical_to_exact_schedule,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn print_compress_records(records: &[CompressRecord]) {
    println!("\n== Wire compression: bytes on the feature and gradient lanes ==");
    println!(
        "{:>3} {:>3} {:>5} {:>6}  {:>12}  {:>12}  {:>12}  {:>9}  {:>8}  identical",
        "p", "c", "mode", "codec", "words/epoch", "bytes_wire", "bytes_saved", "reduction", "loss"
    );
    for r in records {
        let loss =
            if r.final_loss.is_nan() { "-".to_string() } else { format!("{:.4}", r.final_loss) };
        println!(
            "{:>3} {:>3} {:>5} {:>6}  {:>12}  {:>12}  {:>12}  {:>8.2}x  {:>8}  {}",
            r.p,
            r.c,
            r.mode,
            r.codec,
            r.words_per_epoch,
            r.bytes_on_wire,
            r.bytes_saved,
            r.bytes_reduction_x1000 as f64 / 1000.0,
            loss,
            r.identical_to_exact_schedule
        );
    }
}

/// The fetch epoch of [`run_fetch_epoch`], cache off, with the feature rows
/// travelling under `codec`.  Returns per-rank fetched rows plus the summed
/// word, message and byte books.
#[allow(clippy::type_complexity)]
fn run_compress_epoch(
    runtime: &Runtime,
    h: &DenseMatrix,
    minibatches: &[MinibatchSample],
    c: usize,
    codec: Codec,
) -> (Vec<Vec<DenseMatrix>>, usize, usize, usize, usize) {
    let p = runtime.size();
    let steps = minibatches.len().div_ceil(p);
    let outs = runtime
        .run(|comm| {
            let rank = comm.rank();
            let grid = ProcessGrid::new(p, c).expect("valid grid");
            let (my_row, _) = grid.coords(rank);
            let store =
                FeatureStore::from_full(h, grid.rows(), my_row).expect("store").with_codec(codec);
            let group = Group::new(&grid.col_ranks(rank)).expect("group");
            let my_mbs: Vec<&MinibatchSample> = minibatches.iter().skip(rank).step_by(p).collect();
            let mut fetched = Vec::with_capacity(my_mbs.len());
            for step in 0..steps {
                let wanted: Vec<usize> =
                    my_mbs.get(step).map(|mb| mb.input_vertices().to_vec()).unwrap_or_default();
                let rows = store.fetch(comm, &group, &wanted).expect("fetch");
                if step < my_mbs.len() {
                    fetched.push(rows);
                }
            }
            fetched
        })
        .expect("compress epoch");
    let mut per_rank = Vec::with_capacity(outs.len());
    let (mut words, mut messages, mut bytes, mut saved) = (0, 0, 0, 0);
    for o in outs {
        words += o.stats.words_sent;
        messages += o.stats.messages;
        bytes += o.stats.bytes_on_wire;
        saved += o.stats.bytes_saved;
        per_rank.push(o.value);
    }
    (per_rank, words, messages, bytes, saved)
}

/// Worst `|a − b|` over two identically-shaped per-rank fetch results.
fn max_row_error(a: &[Vec<DenseMatrix>], b: &[Vec<DenseMatrix>]) -> f64 {
    let mut worst = 0.0f64;
    for (ra, rb) in a.iter().zip(b) {
        for (ma, mb) in ra.iter().zip(rb) {
            for (x, y) in ma.as_slice().iter().zip(mb.as_slice()) {
                worst = worst.max((x - y).abs());
            }
        }
    }
    worst
}

/// The `--compress` sweep: the `--fetch` feature-fetch epoch (cache off)
/// replayed under every wire codec, plus one small end-to-end training run
/// per codec.  Asserts in-sweep that the exact codec *is* the word book
/// (`bytes == 8 · words`, nothing saved), that compressed codecs keep the
/// schedule (words, messages) bit-identical while the byte books balance
/// (`bytes_on_wire + bytes_saved == bytes_on_wire(exact)`), that the feature
/// lanes clear the reduction floors (fp16 ≥ 1.9×, int8 ≥ 3.5× wherever
/// p > c — full replication serves every fetch locally, so there is no wire
/// to shrink), that per-row quantization error stays inside each codec's
/// stated bound, and that the quantized training loss lands within 0.25 of
/// exact.  Writes `BENCH_compress.json`.
fn run_compress_sweep(smoke: bool, out_dir: &std::path::Path) {
    use dmbs_gnn::{TrainingReport, TrainingSession};
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    use dmbs_sampling::{DistConfig, ReplicatedBackend};
    use std::sync::Arc;

    // The --fetch workload family, pinned at f = 16 so the per-row framing
    // (tag + scale byte for int8) is amortized the way real feature widths
    // amortize it.
    let (scale, degree, f, batch_size, num_batches, fanouts) =
        if smoke { (8, 8, 16, 64, 8, vec![5, 5]) } else { (12, 12, 16, 256, 16, vec![10, 5]) };
    let shapes: &[(usize, usize)] =
        if smoke { &[(2, 1), (2, 2), (4, 2)] } else { &[(4, 1), (4, 2), (4, 4), (8, 2), (8, 4)] };
    if smoke {
        println!("compress smoke mode: tiny workload, full shape × codec sweep + byte books");
    }

    let graph = rmat(&RmatConfig::new(scale, degree), &mut StdRng::seed_from_u64(99))
        .expect("valid RMAT config");
    let a = graph.adjacency().clone();
    let n = a.rows();
    let h = DenseMatrix::from_rows(
        &(0..n)
            .map(|v| (0..f).map(|j| ((v * 31 + j * 7) % 1000) as f64 * 1e-3).collect())
            .collect::<Vec<_>>(),
    )
    .expect("feature matrix");
    let batches: Vec<Vec<usize>> = (0..num_batches)
        .map(|i| (0..batch_size).map(|j| (i * batch_size + j * 7) % n).collect())
        .collect();
    let sampler = GraphSageSampler::new(fanouts.clone());
    let backend = LocalBackend::new(BulkSamplerConfig::new(batch_size, 4)).expect("bulk config");
    let epoch = backend.sample_epoch(&sampler, &a, &batches, 7).expect("epoch");
    let minibatches = epoch.output.minibatches;
    let plan = FetchPlan::from_minibatches(&minibatches);

    let mut records = Vec::new();
    for &(p, c) in shapes {
        let runtime = Runtime::new(p).expect("runtime");
        let reps = if smoke { 1 } else { 3 };
        let (exact_wall, (exact_rows, exact_words, exact_msgs, exact_bytes, exact_saved)) =
            time_best(reps, || run_compress_epoch(&runtime, &h, &minibatches, c, Codec::Exact));
        assert_eq!(
            exact_bytes,
            exact_words * 8,
            "p={p} c={c}: the exact codec must bill exactly 8 bytes per word"
        );
        assert_eq!(exact_saved, 0, "p={p} c={c}: the exact codec saved bytes out of thin air");
        records.push(CompressRecord {
            p,
            c,
            mode: "fetch",
            codec: Codec::Exact.name(),
            wall_s: exact_wall,
            words_per_epoch: exact_words,
            messages: exact_msgs,
            bytes_on_wire: exact_bytes,
            bytes_saved: 0,
            bytes_reduction_x1000: 1000,
            max_abs_err: 0.0,
            final_loss: f64::NAN,
            loss_delta_vs_exact: f64::NAN,
            identical_to_exact_schedule: true,
        });
        for codec in [Codec::Fp16, Codec::Int8] {
            let (wall, (rows, words, msgs, bytes, saved)) =
                time_best(reps, || run_compress_epoch(&runtime, &h, &minibatches, c, codec));
            let label = format!("p={p} c={c} {codec}");
            let identical = words == exact_words && msgs == exact_msgs;
            assert!(identical, "{label}: the codec changed the communication schedule");
            assert_eq!(bytes + saved, exact_bytes, "{label}: byte books do not balance");
            // A byte-free shape (fully replicated) reduces nothing: 1.0×.
            let reduction_x1000 = (exact_bytes * 1000).checked_div(bytes).unwrap_or(1000);
            if p > c {
                // Fully-replicated shapes (p == c) serve every fetch locally,
                // so there are no wire bytes to shrink.
                let floor = if codec == Codec::Fp16 { 1900 } else { 3500 };
                assert!(
                    reduction_x1000 >= floor,
                    "{label}: {:.2}x reduction is under the {:.2}x floor on the feature lanes",
                    reduction_x1000 as f64 / 1000.0,
                    floor as f64 / 1000.0,
                );
            }
            let max_err = max_row_error(&rows, &exact_rows);
            // The synthetic features live in [0, 1): fp16 resolves ~2⁻¹¹
            // relative, int8 max_abs/254 per row.
            let bound = if codec == Codec::Fp16 { 1.0 / 1024.0 } else { 1.0 / 254.0 + 1e-12 };
            assert!(
                max_err <= bound,
                "{label}: row error {max_err:.3e} above the codec bound {bound:.3e}"
            );
            records.push(CompressRecord {
                p,
                c,
                mode: "fetch",
                codec: codec.name(),
                wall_s: wall,
                words_per_epoch: words,
                messages: msgs,
                bytes_on_wire: bytes,
                bytes_saved: saved,
                bytes_reduction_x1000: reduction_x1000,
                max_abs_err: max_err,
                final_loss: f64::NAN,
                loss_delta_vs_exact: f64::NAN,
                identical_to_exact_schedule: identical,
            });
        }
    }

    // One small end-to-end training run per codec: the loss trajectory must
    // survive quantized feature lanes, and the byte books must flow through
    // the session's per-epoch deltas (not just the standalone fetch path).
    let (tp, tc) = if smoke { (2, 1) } else { (4, 2) };
    let mut cfg = DatasetConfig::products_like(if smoke { 6 } else { 8 });
    cfg.feature_dim = f;
    cfg.num_classes = 3;
    cfg.train_fraction = 0.5;
    cfg.homophily = 0.6;
    let dataset = Arc::new(build_dataset(&cfg, &mut StdRng::seed_from_u64(17)).expect("dataset"));
    let train = |codec: Codec| -> (f64, TrainingReport) {
        let dist = DistConfig::new(tp, tc, BulkSamplerConfig::new(if smoke { 8 } else { 16 }, 2));
        let backend = ReplicatedBackend::new(dist).expect("backend");
        let session = TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
            .backend(backend)
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(2)
            .seed(23)
            .wire_codec(codec)
            .without_evaluation()
            .build()
            .expect("session");
        let start = Instant::now();
        let report = session.train().expect("training");
        (start.elapsed().as_secs_f64(), report)
    };
    let book = |r: &TrainingReport| -> (usize, usize, usize, usize) {
        (
            r.epochs.iter().map(|e| e.comm.words_sent).sum(),
            r.epochs.iter().map(|e| e.comm.messages).sum(),
            r.epochs.iter().map(|e| e.comm.bytes_on_wire).sum(),
            r.epochs.iter().map(|e| e.comm.bytes_saved).sum(),
        )
    };
    let final_loss = |r: &TrainingReport| r.epochs.last().expect("epochs").mean_loss;
    let (exact_train_wall, exact_train) = train(Codec::Exact);
    let (ew, em, eb, es) = book(&exact_train);
    assert_eq!(eb, ew * 8, "train exact: bytes must be 8 · words");
    assert_eq!(es, 0, "train exact: nothing to save under the exact codec");
    records.push(CompressRecord {
        p: tp,
        c: tc,
        mode: "train",
        codec: Codec::Exact.name(),
        wall_s: exact_train_wall,
        words_per_epoch: ew,
        messages: em,
        bytes_on_wire: eb,
        bytes_saved: 0,
        bytes_reduction_x1000: 1000,
        max_abs_err: f64::NAN,
        final_loss: final_loss(&exact_train),
        loss_delta_vs_exact: 0.0,
        identical_to_exact_schedule: true,
    });
    for codec in [Codec::Fp16, Codec::Int8] {
        let (wall, report) = train(codec);
        let (w, m, b, s) = book(&report);
        let label = format!("train p={tp} c={tc} {codec}");
        assert_eq!(w, ew, "{label}: words diverged from exact");
        assert_eq!(m, em, "{label}: messages diverged from exact");
        assert_eq!(b + s, eb, "{label}: training byte books do not balance");
        // Both presets pick tp > tc, so the feature lanes carry real bytes.
        assert!(b < eb, "{label}: the codec did not shrink the training wire");
        let loss = final_loss(&report);
        let delta = (loss - final_loss(&exact_train)).abs();
        assert!(
            delta < 0.25,
            "{label}: final loss {loss:.4} drifted {delta:.4} from exact — quantization broke \
             training"
        );
        records.push(CompressRecord {
            p: tp,
            c: tc,
            mode: "train",
            codec: codec.name(),
            wall_s: wall,
            words_per_epoch: w,
            messages: m,
            bytes_on_wire: b,
            bytes_saved: s,
            bytes_reduction_x1000: eb * 1000 / b,
            max_abs_err: f64::NAN,
            final_loss: loss,
            loss_delta_vs_exact: delta,
            identical_to_exact_schedule: true,
        });
    }

    let workload = Workload {
        name: "compress_fetch",
        detail: format!(
            "feature-fetch phase of one GraphSAGE {fanouts:?} bulk epoch ({num_batches} batches \
             of {batch_size}, f = {f}) on rmat scale {scale} deg {degree}, replayed under every \
             wire codec; plus one {tp}x{tc} products-like training run per codec; {} raw \
             requests, {} unique",
            plan.total_requests(),
            plan.unique_len()
        ),
        items: plan.total_requests(),
        throughput_unit: "requests/epoch",
    };
    print_compress_records(&records);
    write_compress_json(&out_dir.join("BENCH_compress.json"), &workload, &records);
    println!(
        "\nAll codecs kept the schedule bit-identical; every byte book balanced \
         (bytes_on_wire + bytes_saved == exact bill)."
    );
}

/// One measured (grid shape × schedule) configuration of the overlap sweep.
struct OverlapRecord {
    p: usize,
    c: usize,
    /// `"sync"` or `"overlap"`.
    mode: &'static str,
    /// Measured wall seconds of the whole training run.
    wall_s: f64,
    /// Serial-schedule epoch seconds of this run (compute + full α–β bill),
    /// summed over epochs — identical in expectation between the two
    /// schedules, but carries this run's compute-measurement noise.
    serial_epoch_s: f64,
    /// Epoch seconds the schedule pays, charged from the *sync run's*
    /// measured compute baseline: `sync serial` for the sync row,
    /// `sync serial - overlapped_s` for the overlap row.  Both schedules
    /// execute bit-identical compute and identical α–β bills, so the common
    /// baseline isolates the schedule effect from machine noise.
    modeled_epoch_s: f64,
    /// Modeled communication seconds hidden behind compute, summed.
    overlapped_s: f64,
    /// `overlapped_s / total modeled comm` — how much of the α–β bill hid.
    overlap_fraction: f64,
    /// All-to-allv + allreduce words over the whole run (all ranks) —
    /// byte-identical between schedules by contract.
    words_total: usize,
    messages: usize,
    /// Losses bit-identical and words equal to the synchronous schedule.
    identical_to_sync: bool,
}

fn write_overlap_json(path: &std::path::Path, workload: &Workload, records: &[OverlapRecord]) {
    let mut out = json_header(workload);
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"p\": {}, \"c\": {}, \"mode\": \"{}\", \"wall_s\": {}, \
             \"serial_epoch_s\": {}, \"modeled_epoch_s\": {}, \"overlapped_s\": {}, \
             \"overlap_fraction\": {}, \"words_total\": {}, \"messages\": {}, \
             \"identical_to_sync\": {}}}{}\n",
            r.p,
            r.c,
            r.mode,
            json_f64(r.wall_s),
            json_f64(r.serial_epoch_s),
            json_f64(r.modeled_epoch_s),
            json_f64(r.overlapped_s),
            json_f64(r.overlap_fraction),
            r.words_total,
            r.messages,
            r.identical_to_sync,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn print_overlap_records(records: &[OverlapRecord]) {
    println!("\n== Overlapped pipeline: modeled epoch seconds, sync vs overlap ==");
    println!(
        "{:>3} {:>3} {:>8}  {:>13}  {:>13}  {:>11}  {:>9}  {:>11}  {:>9}  identical",
        "p", "c", "mode", "serial_s", "modeled_s", "hidden_s", "hidden_%", "words", "messages"
    );
    for r in records {
        println!(
            "{:>3} {:>3} {:>8}  {:>13.6}  {:>13.6}  {:>11.6}  {:>8.1}%  {:>11}  {:>9}  {}",
            r.p,
            r.c,
            r.mode,
            r.serial_epoch_s,
            r.modeled_epoch_s,
            r.overlapped_s,
            r.overlap_fraction * 100.0,
            r.words_total,
            r.messages,
            r.identical_to_sync
        );
    }
}

/// The `--overlap` sweep: distributed training (replicated backend, pinned
/// feature cache) across grid shapes, synchronous vs software-pipelined
/// schedule, asserting that the pipeline is pure schedule — bit-identical
/// losses, identical words/messages — while the modeled epoch seconds drop
/// by exactly the overlapped (hidden) α–β time.  Writes `BENCH_overlap.json`.
///
/// The cost model is deliberately coarse (`α = 200 µs`, `β = 50 ns/word` —
/// a WAN-ish stress model) so the communication bill is visible next to the
/// tiny CPU workload; the *fractions* are what the trajectory tracks.
fn run_overlap_sweep(smoke: bool, out_dir: &std::path::Path) {
    use dmbs_gnn::{FeatureCacheConfig as CacheMode, TrainingReport, TrainingSession};
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    use dmbs_sampling::{DistConfig, ReplicatedBackend};
    use std::sync::Arc;

    let shapes: &[(usize, usize)] = if smoke { &[(2, 1), (4, 2)] } else { &[(4, 2), (8, 4)] };
    let (scale, feature_dim, epochs) = if smoke { (7, 16, 2) } else { (9, 32, 3) };
    if smoke {
        println!("overlap smoke mode: tiny workload, full shape sweep + identity checks");
    }
    let cost = dmbs_comm::CostModel::new(2.0e-4, 5.0e-8);

    let mut cfg = DatasetConfig::products_like(scale);
    cfg.feature_dim = feature_dim;
    cfg.num_classes = 4;
    cfg.train_fraction = 0.5;
    cfg.homophily = 0.6;
    let dataset = Arc::new(build_dataset(&cfg, &mut StdRng::seed_from_u64(5)).expect("dataset"));
    // Enough bulk groups per epoch (≥ 2) that the pipeline has stages to
    // hoist: batch = train/8, bulk k = 2 → 4 groups.
    let batch_size = (dataset.train_set.len() / 8).max(8);

    let train = |p: usize, c: usize, overlap: bool| -> (TrainingReport, f64) {
        let dist = DistConfig::new(p, c, BulkSamplerConfig::new(batch_size, 2));
        let runtime = Runtime::with_cost_model(p, cost).expect("runtime");
        let backend = ReplicatedBackend::with_runtime(runtime, dist).expect("backend");
        let session = TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![10, 5]).with_self_loops())
            .backend(backend)
            .hidden_dim(32)
            .learning_rate(0.05)
            .epochs(epochs)
            .seed(42)
            .feature_cache(CacheMode::EpochPinned)
            .overlap(overlap)
            .without_evaluation()
            .build()
            .expect("session");
        let start = Instant::now();
        let report = session.train().expect("training");
        (report, start.elapsed().as_secs_f64())
    };

    let mut records = Vec::new();
    for &(p, c) in shapes {
        let (sync, sync_wall) = train(p, c, false);
        let (pipelined, overlap_wall) = train(p, c, true);

        // All seconds are critical-path (max across ranks, the
        // bulk-synchronous epoch time); words/messages are summed across
        // ranks (the wire bill).
        let summarize = |r: &TrainingReport| {
            let serial: f64 = r.epochs.iter().map(|e| e.total_time()).sum();
            let modeled: f64 = r.epochs.iter().map(|e| e.modeled_epoch_seconds()).sum();
            let hidden: f64 = r.epochs.iter().map(|e| e.overlapped_time()).sum();
            let comm: f64 = r.epochs.iter().map(|e| e.profile.total_comm()).sum();
            let words: usize = r.epochs.iter().map(|e| e.comm.words_sent).sum();
            let messages: usize = r.epochs.iter().map(|e| e.comm.messages).sum();
            (serial, modeled, hidden, comm, words, messages)
        };
        let (s_serial, _s_modeled, s_hidden, _s_comm, s_words, s_messages) = summarize(&sync);
        let (o_serial, o_modeled, o_hidden, o_comm, o_words, o_messages) = summarize(&pipelined);

        // The overlap contract, asserted on every shape: pure schedule.
        let losses_identical = sync
            .epochs
            .iter()
            .zip(&pipelined.epochs)
            .all(|(a, b)| a.mean_loss.to_bits() == b.mean_loss.to_bits());
        assert!(losses_identical, "p={p} c={c}: overlap changed the losses");
        assert_eq!(o_words, s_words, "p={p} c={c}: overlap changed the word count");
        assert_eq!(o_messages, s_messages, "p={p} c={c}: overlap changed the message count");
        assert_eq!(s_hidden, 0.0, "p={p} c={c}: sync schedule must hide nothing");
        assert!(o_hidden > 0.0, "p={p} c={c}: pipeline hid no communication");
        assert!(
            o_modeled < o_serial,
            "p={p} c={c}: effective epoch seconds must drop by the hidden time"
        );

        // The cross-schedule comparison charges both schedules from ONE
        // measured compute baseline (the sync run's): the two runs execute
        // bit-identical compute and identical α–β bills, so the only
        // schedule-level difference is the hidden seconds — using a common
        // baseline keeps run-to-run machine noise out of the committed
        // trajectory.  Each row's own-run serial seconds stay in
        // `serial_epoch_s` for transparency.
        records.push(OverlapRecord {
            p,
            c,
            mode: "sync",
            wall_s: sync_wall,
            serial_epoch_s: s_serial,
            modeled_epoch_s: s_serial,
            overlapped_s: s_hidden,
            overlap_fraction: 0.0,
            words_total: s_words,
            messages: s_messages,
            identical_to_sync: true,
        });
        records.push(OverlapRecord {
            p,
            c,
            mode: "overlap",
            wall_s: overlap_wall,
            serial_epoch_s: o_serial,
            modeled_epoch_s: s_serial - o_hidden,
            overlapped_s: o_hidden,
            overlap_fraction: if o_comm > 0.0 { o_hidden / o_comm } else { 0.0 },
            words_total: o_words,
            messages: o_messages,
            identical_to_sync: losses_identical && o_words == s_words,
        });
    }

    let workload = Workload {
        name: "overlap_epoch",
        detail: format!(
            "distributed GraphSAGE [10, 5] training, replicated backend + EpochPinned cache, \
             sync vs software-pipelined schedule; products-like scale {scale} (f = \
             {feature_dim}, batch {batch_size}, bulk k = 2, {epochs} epochs), stress cost \
             model alpha = {:.1e}s beta = {:.1e}s/word",
            cost.alpha, cost.beta
        ),
        items: epochs,
        throughput_unit: "epochs/run",
    };
    print_overlap_records(&records);
    write_overlap_json(&out_dir.join("BENCH_overlap.json"), &workload, &records);
    println!("\nOverlapped schedule byte-identical to synchronous; α–β bill partially hidden.");
}

/// One row of the auto-tuner sweep: the default schedule, the tuner's
/// lossless arg-min (`"chosen"` — what `builder().auto()` applies), or the
/// lossy-admitted arg-min (`"chosen_lossy"`) at one grid shape.  The chosen
/// rows' knobs are part of the record key (`policy` = cache mode, `codec`),
/// so any drift in the tuner's choice hard-fails the CI check as a missing
/// record.
struct AutotuneRecord {
    p: usize,
    c: usize,
    /// `"default"`, `"chosen"` or `"chosen_lossy"`.
    mode: &'static str,
    /// Cache mode of this row's schedule (`"off"` / `"pinned"` / `"lru"`).
    policy: &'static str,
    /// Wire codec of this row's schedule.
    codec: &'static str,
    /// `1` when this row's schedule overlaps communication with compute.
    overlap_on: usize,
    /// Valid candidates this row's grid enumerated (lossless grid for the
    /// default/chosen rows, lossy-admitted grid for the chosen_lossy row).
    candidates: usize,
    /// Predicted per-epoch words on the wire (all ranks) — exact.
    predicted_words: usize,
    /// Predicted per-epoch bytes on the wire (all ranks) — exact.
    predicted_bytes_on_wire: usize,
    /// Predicted per-rank α–β communication seconds per epoch, as integer
    /// nanoseconds — a pure function of the deterministic probe books.
    predicted_comm_ns: u64,
    /// Predicted effective epoch seconds (probed compute + predicted comm −
    /// overlap credit) — carries measured-compute noise, soft-gated.
    predicted_epoch_s: f64,
    /// Realized effective epoch seconds, charged from the *default run's*
    /// measured compute baseline plus this run's own modeled comm minus its
    /// hidden seconds — same common-baseline discipline as the overlap
    /// sweep, so the committed trajectory isolates the schedule effect.
    realized_epoch_s: f64,
    /// Realized words / messages / bytes over the whole run (all ranks).
    words_total: usize,
    messages: usize,
    bytes_on_wire: usize,
    /// Measured wall seconds of the whole realized training run.
    wall_s: f64,
    /// Per-shape fact stamped on every row of the shape:
    /// `builder().auto()` picked this shape's `chosen` schedule and trained
    /// bit-identically to the explicit configuration.
    identical_to_builder_auto: bool,
}

fn write_autotune_json(path: &std::path::Path, workload: &Workload, records: &[AutotuneRecord]) {
    let mut out = json_header(workload);
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"p\": {}, \"c\": {}, \"mode\": \"{}\", \"policy\": \"{}\", \
             \"codec\": \"{}\", \"overlap_on\": {}, \"candidates\": {}, \
             \"predicted_words\": {}, \"predicted_bytes_on_wire\": {}, \
             \"predicted_comm_ns\": {}, \"predicted_epoch_s\": {}, \
             \"realized_epoch_s\": {}, \"words_total\": {}, \"messages\": {}, \
             \"bytes_on_wire\": {}, \"wall_s\": {}, \
             \"identical_to_builder_auto\": {}}}{}\n",
            r.p,
            r.c,
            r.mode,
            r.policy,
            r.codec,
            r.overlap_on,
            r.candidates,
            r.predicted_words,
            r.predicted_bytes_on_wire,
            r.predicted_comm_ns,
            json_f64(r.predicted_epoch_s),
            json_f64(r.realized_epoch_s),
            r.words_total,
            r.messages,
            r.bytes_on_wire,
            json_f64(r.wall_s),
            r.identical_to_builder_auto,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn print_autotune_records(records: &[AutotuneRecord]) {
    println!("\n== Auto-tuner: predicted vs realized epoch seconds, default vs chosen ==");
    println!(
        "{:>3} {:>3} {:>13} {:>7} {:>6} {:>4} {:>5}  {:>11}  {:>11}  {:>12}  {:>12}  auto",
        "p",
        "c",
        "mode",
        "cache",
        "codec",
        "ovl",
        "cand",
        "pred_words",
        "words",
        "pred_s/ep",
        "real_s/ep"
    );
    for r in records {
        println!(
            "{:>3} {:>3} {:>13} {:>7} {:>6} {:>4} {:>5}  {:>11}  {:>11}  {:>12.6}  {:>12.6}  {}",
            r.p,
            r.c,
            r.mode,
            r.policy,
            r.codec,
            if r.overlap_on == 1 { "on" } else { "off" },
            r.candidates,
            r.predicted_words,
            r.words_total,
            r.predicted_epoch_s,
            r.realized_epoch_s,
            r.identical_to_builder_auto
        );
    }
}

/// The `--autotune` sweep: per grid shape, run the tuner's probe epochs, fit
/// the [`dmbs_comm::tune::TuningModel`], search the lossless grid (exactly
/// what `builder().auto()` does) and the lossy-admitted grid, then *realize*
/// the default, chosen, and lossy-chosen schedules with full training runs —
/// asserting that the chosen schedules' realized effective epoch seconds
/// never exceed the default's, that the chosen run's epoch-0 books equal the
/// prediction counter-for-counter, and that `builder().auto()` reproduces
/// the offline search bit-identically.  Writes `BENCH_autotune.json`.
///
/// Same WAN-ish stress cost model as the overlap sweep (`α = 200 µs`,
/// `β = 50 ns/word`) so the schedule knobs are load-bearing next to the tiny
/// CPU workload.
fn run_autotune_sweep(smoke: bool, out_dir: &std::path::Path) {
    use dmbs_comm::tune::{self, ProbeEpoch, ProbeSet, TuningChoice, TuningGrid, TuningModel};
    use dmbs_gnn::{FeatureCacheConfig as CacheMode, TrainingReport, TrainingSession};
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    use dmbs_sampling::{DistConfig, ReplicatedBackend};
    use std::sync::Arc;

    let shapes: &[(usize, usize)] = if smoke { &[(2, 1), (4, 2)] } else { &[(4, 2), (8, 4)] };
    let (scale, feature_dim, epochs) = if smoke { (7, 16, 2) } else { (9, 32, 3) };
    if smoke {
        println!("autotune smoke mode: tiny workload, full shape sweep + identity checks");
    }
    let cost = dmbs_comm::CostModel::new(2.0e-4, 5.0e-8);
    // Budget for the LRU candidates the lossy grid enumerates (the tuner
    // scores them pessimistically; they document the knob, they never win).
    let lru_budget = 1usize << 16;

    let mut cfg = DatasetConfig::products_like(scale);
    cfg.feature_dim = feature_dim;
    cfg.num_classes = 4;
    cfg.train_fraction = 0.5;
    cfg.homophily = 0.6;
    let dataset = Arc::new(build_dataset(&cfg, &mut StdRng::seed_from_u64(5)).expect("dataset"));
    let batch_size = (dataset.train_set.len() / 8).max(8);

    let builder = |p: usize, c: usize| {
        let dist = DistConfig::new(p, c, BulkSamplerConfig::new(batch_size, 2));
        let runtime = Runtime::with_cost_model(p, cost).expect("runtime");
        let backend = ReplicatedBackend::with_runtime(runtime, dist).expect("backend");
        TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![10, 5]).with_self_loops())
            .backend(backend)
            .hidden_dim(32)
            .learning_rate(0.05)
            .epochs(epochs)
            .seed(42)
            .without_evaluation()
    };
    let train =
        |p: usize, c: usize, choice: &TuningChoice, n_epochs: usize| -> (TrainingReport, f64) {
            let cache = match choice.cache {
                tune::CacheKnob::Off => CacheMode::Off,
                tune::CacheKnob::EpochPinned => CacheMode::EpochPinned,
                tune::CacheKnob::Lru { byte_budget } => CacheMode::Lru { byte_budget },
            };
            let session = builder(p, c)
                .epochs(n_epochs)
                .feature_cache(cache)
                .wire_codec(choice.codec)
                .overlap(choice.overlap)
                .build()
                .expect("session");
            let start = Instant::now();
            let report = session.train().expect("training");
            (report, start.elapsed().as_secs_f64())
        };
    let probe_choice = |cache: tune::CacheKnob, codec: Codec, overlap: bool| TuningChoice {
        cache,
        codec,
        overlap,
    };

    let mut records = Vec::new();
    for &(p, c) in shapes {
        // Probe: one-epoch runs book the workload under each calibrating
        // knob — the same five probes `builder().auto()` would run (the two
        // lossy probes calibrate codec savings for the lossy-admitted grid).
        let probe = |cache, codec, overlap| -> ProbeEpoch {
            let (report, _) = train(p, c, &probe_choice(cache, codec, overlap), 1);
            ProbeEpoch::from_books(&report.epochs[0].profile, &report.epochs[0].comm)
        };
        let probes = ProbeSet {
            baseline: probe(tune::CacheKnob::Off, Codec::Exact, false),
            pinned: probe(tune::CacheKnob::EpochPinned, Codec::Exact, false),
            fp16: Some(probe(tune::CacheKnob::EpochPinned, Codec::Fp16, false)),
            int8: Some(probe(tune::CacheKnob::EpochPinned, Codec::Int8, false)),
            overlapped: (c > 1).then(|| probe(tune::CacheKnob::EpochPinned, Codec::Exact, true)),
        };
        let model = TuningModel::fit(cost, p, probes).expect("probe books must balance");

        // Search: the lossless grid is exactly `builder().auto()`'s; the
        // lossy-admitted grid additionally enumerates fp16/int8 and LRU.
        let lossless_grid = TuningGrid::new(p, c).expect("shape");
        let lossy_grid =
            TuningGrid::new(p, c).expect("shape").with_lru_budget(lru_budget).with_lossy(true);
        let lossless = tune::search(&model, &lossless_grid);
        let lossy = tune::search(&model, &lossy_grid);
        assert_eq!(
            lossless.scored[0].choice,
            TuningChoice::baseline(),
            "p={p} c={c}: candidate 0 must be the default schedule"
        );
        let default_pred = &lossless.scored[0];
        let chosen_pred = lossless.chosen();
        let lossy_pred = lossy.chosen();

        // Realize: full-length training of the three schedules.
        let (default_report, default_wall) = train(p, c, &default_pred.choice, epochs);
        let (chosen_report, chosen_wall) = train(p, c, &chosen_pred.choice, epochs);
        let (lossy_report, lossy_wall) = train(p, c, &lossy_pred.choice, epochs);

        // The chosen run's epoch-0 books must equal the prediction
        // counter-for-counter: the probes booked this exact schedule.
        for (label, pred, report) in
            [("chosen", chosen_pred, &chosen_report), ("chosen_lossy", lossy_pred, &lossy_report)]
        {
            let e0 = &report.epochs[0];
            assert_eq!(pred.cost.words, e0.comm.words_sent, "p={p} c={c} {label}: words");
            assert_eq!(pred.cost.messages, e0.comm.messages, "p={p} c={c} {label}: messages");
            assert_eq!(
                pred.cost.bytes_on_wire, e0.comm.bytes_on_wire,
                "p={p} c={c} {label}: bytes on wire"
            );
        }

        // Cross-run seconds are charged from ONE measured compute baseline
        // (the default run's) plus each run's own modeled comm minus its
        // hidden seconds — every schedule executes bit-identical compute,
        // so the common baseline isolates the schedule effect.
        let base_compute: f64 =
            default_report.epochs.iter().map(|e| e.profile.total_compute()).sum();
        let realize = |r: &TrainingReport| -> f64 {
            let comm: f64 = r.epochs.iter().map(|e| e.profile.total_comm()).sum();
            let hidden: f64 = r.epochs.iter().map(|e| e.profile.total_overlap()).sum();
            (base_compute + comm - hidden) / epochs as f64
        };
        let realized_default = realize(&default_report);
        let realized_chosen = realize(&chosen_report);
        let realized_lossy = realize(&lossy_report);
        // The acceptance criterion: the tuner never picks a schedule that
        // realizes worse than the default it was free to keep.
        assert!(
            realized_chosen <= realized_default,
            "p={p} c={c}: chosen schedule realized {realized_chosen}s/epoch, worse than the \
             default's {realized_default}s/epoch"
        );
        assert!(
            realized_lossy <= realized_default,
            "p={p} c={c}: lossy-chosen schedule realized worse than the default"
        );

        // `builder().auto()` must reproduce the offline search: same chosen
        // schedule, bit-identical training.
        let auto_session = builder(p, c).auto().expect("auto build");
        let auto_choice = auto_session.tuning_outcome().expect("tuned").chosen().choice;
        assert_eq!(
            auto_choice, chosen_pred.choice,
            "p={p} c={c}: builder().auto() disagrees with the offline search"
        );
        let auto_report = auto_session.train().expect("auto training");
        let auto_identical = auto_report.epochs.iter().zip(&chosen_report.epochs).all(|(a, b)| {
            a.mean_loss.to_bits() == b.mean_loss.to_bits()
                && a.comm.words_sent == b.comm.words_sent
                && a.comm.messages == b.comm.messages
                && a.comm.bytes_on_wire == b.comm.bytes_on_wire
        });
        assert!(auto_identical, "p={p} c={c}: auto() diverged from the explicit chosen config");

        let summarize = |r: &TrainingReport| {
            let words: usize = r.epochs.iter().map(|e| e.comm.words_sent).sum();
            let messages: usize = r.epochs.iter().map(|e| e.comm.messages).sum();
            let bytes: usize = r.epochs.iter().map(|e| e.comm.bytes_on_wire).sum();
            (words, messages, bytes)
        };
        for (mode, pred, candidates, report, wall, realized) in [
            (
                "default",
                default_pred,
                lossless.scored.len(),
                &default_report,
                default_wall,
                realized_default,
            ),
            (
                "chosen",
                chosen_pred,
                lossless.scored.len(),
                &chosen_report,
                chosen_wall,
                realized_chosen,
            ),
            (
                "chosen_lossy",
                lossy_pred,
                lossy.scored.len(),
                &lossy_report,
                lossy_wall,
                realized_lossy,
            ),
        ] {
            let (words, messages, bytes) = summarize(report);
            records.push(AutotuneRecord {
                p,
                c,
                mode,
                policy: pred.choice.cache.name(),
                codec: pred.choice.codec.name(),
                overlap_on: usize::from(pred.choice.overlap),
                candidates,
                predicted_words: pred.cost.words,
                predicted_bytes_on_wire: pred.cost.bytes_on_wire,
                predicted_comm_ns: pred.cost.comm_ns(),
                predicted_epoch_s: pred.cost.total_s(),
                realized_epoch_s: realized,
                words_total: words,
                messages,
                bytes_on_wire: bytes,
                wall_s: wall,
                identical_to_builder_auto: auto_identical,
            });
        }
    }

    let workload = Workload {
        name: "autotune_epoch",
        detail: format!(
            "cost-model-driven auto-tuner: probe/fit/search then realize default vs chosen vs \
             lossy-chosen schedules; distributed GraphSAGE [10, 5], replicated backend, \
             products-like scale {scale} (f = {feature_dim}, batch {batch_size}, bulk k = 2, \
             {epochs} epochs), stress cost model alpha = {:.1e}s beta = {:.1e}s/word",
            cost.alpha, cost.beta
        ),
        items: epochs,
        throughput_unit: "epochs/run",
    };
    print_autotune_records(&records);
    write_autotune_json(&out_dir.join("BENCH_autotune.json"), &workload, &records);
    println!(
        "\nChosen schedule realized no worse than the default on every shape; \
         builder().auto() reproduced the offline search bit-identically."
    );
}

/// One row of the dynamic-graph sweep: either a standalone ingest-apply
/// microbench (`mode` `"apply_delta"` / `"apply_rebuild"`, `p = c = 1`) or a
/// distributed training run with a live ingest schedule (`mode` `"train"`,
/// keyed additionally by invalidation `policy`).
struct DynamicRecord {
    p: usize,
    c: usize,
    mode: &'static str,
    /// `"precise"` / `"flush_all"` on train rows, `"-"` on apply rows.
    policy: &'static str,
    wall_s: f64,
    /// Delta ops applied over the run (inserts + deletes, post-coalescing).
    ingest_ops: usize,
    /// Apply rows: ops folded per second.  NaN → null on train rows.
    throughput: f64,
    words_total: usize,
    messages: usize,
    rows_invalidated: usize,
    rows_retained: usize,
    invalidation_words: usize,
    retained_words: usize,
    /// Words the flush-all run refetched that this run did not (precise
    /// rows; `0` elsewhere) — the payoff precise invalidation is for.
    refetch_words_avoided: usize,
    /// Losses and every counter bit-identical to the eager-rebuild run of
    /// the same configuration.
    identical_to_rebuild: bool,
}

fn write_dynamic_json(path: &std::path::Path, workload: &Workload, records: &[DynamicRecord]) {
    let mut out = json_header(workload);
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"p\": {}, \"c\": {}, \"mode\": \"{}\", \"policy\": \"{}\", \"wall_s\": {}, \
             \"ingest_ops\": {}, \"throughput\": {}, \"words_total\": {}, \"messages\": {}, \
             \"rows_invalidated\": {}, \"rows_retained\": {}, \"invalidation_words\": {}, \
             \"retained_words\": {}, \"refetch_words_avoided\": {}, \
             \"identical_to_rebuild\": {}}}{}\n",
            r.p,
            r.c,
            r.mode,
            r.policy,
            json_f64(r.wall_s),
            r.ingest_ops,
            json_f64(r.throughput),
            r.words_total,
            r.messages,
            r.rows_invalidated,
            r.rows_retained,
            r.invalidation_words,
            r.retained_words,
            r.refetch_words_avoided,
            r.identical_to_rebuild,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn print_dynamic_records(records: &[DynamicRecord]) {
    println!("\n== Dynamic graphs: delta-CSR ingest and precise invalidation ==");
    println!(
        "{:>3} {:>3} {:>13} {:>10}  {:>10}  {:>12}  {:>9}  {:>9}  {:>11}  {:>11}  identical",
        "p", "c", "mode", "policy", "ops", "ops/s", "inv_rows", "ret_rows", "inv_words", "avoided"
    );
    for r in records {
        let ops_s =
            if r.throughput.is_nan() { "-".to_string() } else { format!("{:.3e}", r.throughput) };
        println!(
            "{:>3} {:>3} {:>13} {:>10}  {:>10}  {:>12}  {:>9}  {:>9}  {:>11}  {:>11}  {}",
            r.p,
            r.c,
            r.mode,
            r.policy,
            r.ingest_ops,
            ops_s,
            r.rows_invalidated,
            r.rows_retained,
            r.invalidation_words,
            r.refetch_words_avoided,
            r.identical_to_rebuild
        );
    }
}

/// The `--dynamic` sweep: the incremental-ingest path end to end.
///
/// Part one folds a stream of delta batches into an RMAT adjacency through
/// [`GraphIngest`](dmbs_graph::GraphIngest) under both modes and asserts the lazily-compacted CSR is
/// byte-identical to the eagerly-rebuilt one (ops/s is the trajectory).
/// Part two trains each grid shape with a live ingest schedule under
/// delta × rebuild × {precise, flush-all}; rebuild must reproduce delta bit
/// for bit, the invalidation policy must not move a loss, and the
/// double-entry invalidation books plus the words precise invalidation
/// avoids refetching are recorded for the CI gate to pin.  Writes
/// `BENCH_dynamic.json`.
fn run_dynamic_sweep(smoke: bool, out_dir: &std::path::Path) {
    use dmbs_gnn::{InvalidationPolicy, TrainingReport, TrainingSession};
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    use dmbs_graph::{GraphIngest, IngestMode};
    use dmbs_matrix::DeltaBatch;
    use dmbs_sampling::{DistConfig, ReplicatedBackend};
    use std::sync::Arc;

    if smoke {
        println!("dynamic smoke mode: tiny workload, full mode × policy sweep + identity checks");
    }

    // ---- Part one: apply throughput, lazy overlay vs eager rebuild.
    let (scale, degree, num_batches, ops_per_batch) =
        if smoke { (8, 8, 4, 64) } else { (12, 12, 8, 512) };
    let graph = rmat(&RmatConfig::new(scale, degree), &mut StdRng::seed_from_u64(99))
        .expect("valid RMAT config");
    let a = graph.adjacency().clone();
    let n = a.rows();
    let batches: Vec<DeltaBatch> = (0..num_batches)
        .map(|i| {
            let mut batch = DeltaBatch::new();
            for j in 0..ops_per_batch {
                let r = (i * ops_per_batch + j) * 2_654_435_761 % n;
                if j % 4 == 0 {
                    batch.delete(r, (r + 1) % n);
                } else {
                    batch.insert(r, (i * 97 + j * 131) % n, 1.0 + (j % 7) as f64);
                }
            }
            batch
        })
        .collect();
    let total_ops: usize = batches.iter().map(DeltaBatch::len).sum();
    let reps = if smoke { 1 } else { 3 };
    let run_apply = |mode: IngestMode| {
        let mut ingest = GraphIngest::new(a.clone()).expect("ingest").with_mode(mode);
        for batch in &batches {
            ingest.apply(batch).expect("apply");
        }
        ingest.adjacency().clone()
    };
    let (delta_wall, delta_adj) = time_best(reps, || run_apply(IngestMode::Delta));
    let (rebuild_wall, rebuild_adj) = time_best(reps, || run_apply(IngestMode::Rebuild));
    let apply_identical = delta_adj == rebuild_adj;
    assert!(apply_identical, "lazy delta compaction diverged from the eager rebuild");
    let mut records = Vec::new();
    for (mode, wall) in [("apply_delta", delta_wall), ("apply_rebuild", rebuild_wall)] {
        records.push(DynamicRecord {
            p: 1,
            c: 1,
            mode,
            policy: "-",
            wall_s: wall,
            ingest_ops: total_ops,
            throughput: total_ops as f64 / wall,
            words_total: 0,
            messages: 0,
            rows_invalidated: 0,
            rows_retained: 0,
            invalidation_words: 0,
            retained_words: 0,
            refetch_words_avoided: 0,
            identical_to_rebuild: apply_identical,
        });
    }

    // ---- Part two: training with a live ingest schedule.
    let shapes: &[(usize, usize)] = if smoke { &[(2, 1), (4, 2)] } else { &[(4, 2), (8, 4)] };
    let (dscale, feature_dim) = if smoke { (7, 16) } else { (9, 16) };
    let mut cfg = DatasetConfig::products_like(dscale);
    cfg.feature_dim = feature_dim;
    cfg.num_classes = 4;
    cfg.train_fraction = 0.5;
    cfg.homophily = 0.6;
    let dataset = Arc::new(build_dataset(&cfg, &mut StdRng::seed_from_u64(5)).expect("dataset"));
    let dn = dataset.graph.num_vertices();
    let batch_size = (dataset.train_set.len() / 8).max(8);
    // The schedule, derived from the dataset itself: after epoch 0 delete
    // real edges and fan new ones out; after epoch 1 retract some inserts
    // and grow further.
    let adj = dataset.graph.adjacency();
    let existing: Vec<(usize, usize)> = adj.iter().map(|(r, c, _)| (r, c)).take(6).collect();
    let mut missing = Vec::new();
    'scan: for r in 0..dn {
        for c in 0..dn {
            if r != c && adj.get(r, c) == 0.0 {
                missing.push((r, c));
                if missing.len() == 24 {
                    break 'scan;
                }
            }
        }
    }
    let mut first = DeltaBatch::new();
    for &(r, c) in &existing[..4] {
        first.delete(r, c);
    }
    for &(r, c) in &missing[..16] {
        first.insert(r, c, 1.0);
    }
    let mut second = DeltaBatch::new();
    for &(r, c) in &existing[4..] {
        second.delete(r, c);
    }
    for &(r, c) in &missing[16..] {
        second.insert(r, c, 1.5);
    }
    let events = [(0usize, first), (1usize, second)];
    let schedule_ops: usize = events.iter().map(|(_, b)| b.len()).sum();
    let lru_budget = dn * feature_dim * std::mem::size_of::<f64>() / 2;

    let train = |p: usize,
                 c: usize,
                 mode: IngestMode,
                 policy: InvalidationPolicy|
     -> (f64, TrainingReport) {
        let dist = DistConfig::new(p, c, BulkSamplerConfig::new(batch_size, 2));
        let backend = ReplicatedBackend::new(dist).expect("backend");
        let mut builder = TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![4, 3]).with_self_loops())
            .backend(backend)
            .hidden_dim(16)
            .learning_rate(0.05)
            .epochs(3)
            .seed(42)
            .feature_cache(FeatureCacheConfig::Lru { byte_budget: lru_budget })
            .ingest_mode(mode)
            .invalidation(policy)
            .without_evaluation();
        for (after_epoch, batch) in &events {
            builder = builder.ingest(*after_epoch, batch.clone());
        }
        let session = builder.build().expect("session");
        let start = Instant::now();
        let report = session.train().expect("training");
        (start.elapsed().as_secs_f64(), report)
    };
    let identical = |a: &TrainingReport, b: &TrainingReport| {
        a.epochs.len() == b.epochs.len()
            && a.epochs.iter().zip(&b.epochs).all(|(x, y)| {
                x.mean_loss.to_bits() == y.mean_loss.to_bits()
                    && x.comm.words_sent == y.comm.words_sent
                    && x.comm.messages == y.comm.messages
                    && x.comm.cache_hits == y.comm.cache_hits
                    && x.comm.cache_misses == y.comm.cache_misses
                    && x.comm.words_saved == y.comm.words_saved
                    && x.comm.rows_invalidated == y.comm.rows_invalidated
                    && x.comm.rows_retained == y.comm.rows_retained
                    && x.comm.invalidation_words == y.comm.invalidation_words
                    && x.comm.retained_words == y.comm.retained_words
            })
    };
    let sum = |r: &TrainingReport, field: fn(&dmbs_comm::CommStats) -> usize| -> usize {
        r.epochs.iter().map(|e| field(&e.comm)).sum()
    };
    for &(p, c) in shapes {
        let mut by_policy = Vec::new();
        for (policy, label) in
            [(InvalidationPolicy::Precise, "precise"), (InvalidationPolicy::FlushAll, "flush_all")]
        {
            let (wall, delta) = train(p, c, IngestMode::Delta, policy);
            let (_, rebuild) = train(p, c, IngestMode::Rebuild, policy);
            let same = identical(&delta, &rebuild);
            assert!(same, "p={p} c={c} {label}: rebuild diverged from the delta overlay");
            by_policy.push((label, wall, delta));
        }
        let (_, _, precise) = &by_policy[0];
        let (_, _, flush) = &by_policy[1];
        assert!(
            precise
                .epochs
                .iter()
                .zip(&flush.epochs)
                .all(|(x, y)| x.mean_loss.to_bits() == y.mean_loss.to_bits()),
            "p={p} c={c}: the invalidation policy moved a loss"
        );
        let precise_words = sum(precise, |s| s.words_sent);
        let flush_words = sum(flush, |s| s.words_sent);
        assert!(
            precise_words <= flush_words,
            "p={p} c={c}: precise invalidation refetched more than flush-all"
        );
        for (label, wall, report) in &by_policy {
            records.push(DynamicRecord {
                p,
                c,
                mode: "train",
                policy: label,
                wall_s: *wall,
                ingest_ops: schedule_ops,
                throughput: f64::NAN,
                words_total: sum(report, |s| s.words_sent),
                messages: sum(report, |s| s.messages),
                rows_invalidated: sum(report, |s| s.rows_invalidated),
                rows_retained: sum(report, |s| s.rows_retained),
                invalidation_words: sum(report, |s| s.invalidation_words),
                retained_words: sum(report, |s| s.retained_words),
                refetch_words_avoided: if *label == "precise" {
                    flush_words - precise_words
                } else {
                    0
                },
                identical_to_rebuild: true,
            });
        }
    }

    let workload = Workload {
        name: "dynamic_ingest",
        detail: format!(
            "delta-CSR apply of {num_batches} batches x {ops_per_batch} ops on rmat scale \
             {scale} deg {degree} (lazy overlay vs eager rebuild), plus distributed GraphSAGE \
             [4, 3] training with a 2-event ingest schedule ({schedule_ops} ops) on \
             products-like scale {dscale} (f = {feature_dim}, batch {batch_size}, 3 epochs, \
             LRU cache) under delta x rebuild x {{precise, flush-all}}"
        ),
        items: total_ops + schedule_ops,
        throughput_unit: "delta-ops/run",
    };
    print_dynamic_records(&records);
    write_dynamic_json(&out_dir.join("BENCH_dynamic.json"), &workload, &records);
    println!(
        "\nDelta overlay byte-identical to eager rebuild everywhere; invalidation books \
         double-entry balanced."
    );
}

/// One (grid shape × transport) row of the calibration sweep.
struct TransportRecord {
    p: usize,
    c: usize,
    /// `"simulator"` or `"socket"`.
    transport: &'static str,
    /// Training epochs in the run (exact — a changed schedule length would
    /// silently rescale every per-epoch field below).
    epochs: usize,
    /// Measured wall seconds of the whole training run on this transport.
    wall_s: f64,
    /// Modeled epoch seconds (measured compute + configured α–β comm
    /// bill), summed over epochs.  The α–β portion is bit-identical
    /// between transports by the equivalence contract; the compute
    /// portion is measured wall time, so the field drifts with the
    /// machine and is soft-gated.
    modeled_epoch_s: f64,
    /// Measured wall seconds per epoch (`wall_s / epochs`).  On the socket
    /// row this includes real process spawn + wire time; the gap to
    /// `modeled_epoch_s / epochs` is what the calibration quantifies.
    measured_epoch_s: f64,
    /// Per-rank communication seconds per epoch the *fitted* α–β constants
    /// predict for this run's wire bill:
    /// `(fit_alpha·messages + fit_beta·words) / (p · epochs)`.
    fit_comm_epoch_s: f64,
    /// Fitted per-message latency of the socket transport (seconds).
    fit_alpha_s: f64,
    /// Fitted per-word cost of the socket transport (seconds/word).
    fit_beta_s_per_word: f64,
    /// Wire bill over the whole run, summed across ranks — byte-identical
    /// between transports by contract.
    words_total: usize,
    messages: usize,
    cache_hits: usize,
    cache_misses: usize,
    words_saved: usize,
    /// Losses bit-identical and all counters equal to the simulator run.
    identical_to_simulator: bool,
}

fn write_transport_json(path: &std::path::Path, workload: &Workload, records: &[TransportRecord]) {
    let mut out = json_header(workload);
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"p\": {}, \"c\": {}, \"transport\": \"{}\", \"epochs\": {}, \
             \"wall_s\": {}, \"modeled_epoch_s\": {}, \"measured_epoch_s\": {}, \
             \"fit_comm_epoch_s\": {}, \"fit_alpha_s\": {}, \"fit_beta_s_per_word\": {}, \
             \"words_total\": {}, \"messages\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"words_saved\": {}, \"identical_to_simulator\": {}}}{}\n",
            r.p,
            r.c,
            r.transport,
            r.epochs,
            json_f64(r.wall_s),
            json_f64(r.modeled_epoch_s),
            json_f64(r.measured_epoch_s),
            json_f64(r.fit_comm_epoch_s),
            json_f64(r.fit_alpha_s),
            json_f64(r.fit_beta_s_per_word),
            r.words_total,
            r.messages,
            r.cache_hits,
            r.cache_misses,
            r.words_saved,
            r.identical_to_simulator,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn print_transport_records(records: &[TransportRecord]) {
    println!("\n== Transport calibration: simulator vs Unix-socket processes ==");
    println!(
        "{:>3} {:>3} {:>10}  {:>11}  {:>13}  {:>13}  {:>12}  {:>11}  {:>9}  identical",
        "p",
        "c",
        "transport",
        "wall_s",
        "modeled_ep_s",
        "measured_ep_s",
        "fit_comm_s",
        "words",
        "messages"
    );
    for r in records {
        println!(
            "{:>3} {:>3} {:>10}  {:>11.6}  {:>13.6}  {:>13.6}  {:>12.6}  {:>11}  {:>9}  {}",
            r.p,
            r.c,
            r.transport,
            r.wall_s,
            r.modeled_epoch_s / r.epochs as f64,
            r.measured_epoch_s,
            r.fit_comm_epoch_s,
            r.words_total,
            r.messages,
            r.identical_to_simulator
        );
    }
}

/// The `--calibrate` sweep: measure the real Unix-socket transport against
/// the in-process simulator.  Two phases:
///
/// 1. **α–β probe** — a 2-rank ping-pong worker over real OS processes and
///    sockets at several message sizes; a least-squares fit of
///    `seconds ≈ α·messages + β·words` recovers the transport's actual
///    latency and inverse bandwidth in the cost model's own units.
/// 2. **Equivalence + epoch timing** — per grid shape, train the identical
///    session on both transports, assert bit-identical losses and
///    words/messages/cache counters (the cross-backend contract
///    `tests/transport_equivalence.rs` also pins), and record modeled vs
///    measured epoch seconds next to what the fitted constants predict.
///
/// Writes `BENCH_transport.json`.  The counters and `identical_to_simulator`
/// hard-fail under `--check`; every measured or fitted seconds field only
/// soft-warns (it is a property of the host, not of the schedule).
fn run_calibrate_sweep(smoke: bool, out_dir: &std::path::Path) {
    use dmbs_bench::transport::{
        decode_ping_result, encode_ping_job, fit_alpha_beta, registry, ProbeSample, PING_WORKER,
    };
    use dmbs_comm::{SocketLaunch, TransportSelect};
    use dmbs_gnn::{FeatureCacheConfig as CacheMode, TrainingReport, TrainingSession};
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    use dmbs_sampling::{DistConfig, ReplicatedBackend};
    use std::sync::Arc;

    let launch = SocketLaunch::default().timeout_ms(180_000);

    // ---- Phase 1: ping-pong probe over real processes.
    let (sizes, rounds): (&[usize], usize) =
        if smoke { (&[64, 1_024, 16_384], 16) } else { (&[64, 1_024, 16_384, 131_072], 32) };
    if smoke {
        println!("calibrate smoke mode: tiny workload, full probe + shape sweep");
    }
    println!("== α–β probe: {rounds}-round ping-pong per message size (2 rank processes) ==");
    let probe_runtime = Runtime::new(2)
        .expect("probe runtime")
        .with_transport(TransportSelect::UnixSocket(launch.clone()));
    let reg = registry();
    let mut samples = Vec::new();
    for &words in sizes {
        let outs = probe_runtime
            .run_worker(&reg, PING_WORKER, &encode_ping_job(words, rounds))
            .expect("ping-pong probe");
        // Rank 0's clock covers the whole loop; the bill it paid for is both
        // ranks' sends (each round trip is one send per rank, serialized).
        let (mut seconds, mut w, mut m) = (0.0, 0usize, 0usize);
        for o in &outs {
            let (s, ws, ms) = decode_ping_result(&o.value).expect("well-formed probe result");
            if o.rank == 0 {
                seconds = s;
            }
            w += ws;
            m += ms;
        }
        println!(
            "  {words:>8} words/msg: {m:>4} msgs {w:>9} words  {seconds:.6}s  \
             ({:.1} µs one-way)",
            seconds / (2.0 * rounds as f64) * 1e6
        );
        samples.push(ProbeSample { messages: m as f64, words: w as f64, seconds });
    }
    let (fit_alpha, fit_beta) =
        fit_alpha_beta(&samples).expect("probe sizes are non-degenerate by construction");
    println!("fitted: alpha = {fit_alpha:.3e} s/message, beta = {fit_beta:.3e} s/word");

    // ---- Phase 2: sim-vs-socket training per grid shape.  Same session
    // shape as the overlap sweep (replicated backend, pinned cache) so the
    // trajectories are comparable; the stress cost model keeps the *modeled*
    // bill visible next to the measured one.
    let shapes: &[(usize, usize)] =
        if smoke { &[(2, 1), (4, 2)] } else { &[(2, 1), (4, 2), (4, 4)] };
    let (scale, feature_dim, epochs) = if smoke { (7, 16, 2) } else { (8, 32, 3) };
    let cost = dmbs_comm::CostModel::new(2.0e-4, 5.0e-8);

    let mut cfg = DatasetConfig::products_like(scale);
    cfg.feature_dim = feature_dim;
    cfg.num_classes = 4;
    cfg.train_fraction = 0.5;
    cfg.homophily = 0.6;
    let dataset = Arc::new(build_dataset(&cfg, &mut StdRng::seed_from_u64(5)).expect("dataset"));
    let batch_size = (dataset.train_set.len() / 8).max(8);

    let train = |p: usize, c: usize, transport: TransportSelect| -> (TrainingReport, f64) {
        let dist = DistConfig::new(p, c, BulkSamplerConfig::new(batch_size, 2));
        let runtime = Runtime::with_cost_model(p, cost).expect("runtime");
        let backend = ReplicatedBackend::with_runtime(runtime, dist).expect("backend");
        let session = TrainingSession::builder()
            .dataset(Arc::clone(&dataset))
            .sampler(GraphSageSampler::new(vec![10, 5]).with_self_loops())
            .backend(backend)
            .hidden_dim(32)
            .learning_rate(0.05)
            .epochs(epochs)
            .seed(42)
            .feature_cache(CacheMode::EpochPinned)
            .transport(transport)
            .without_evaluation()
            .build()
            .expect("session");
        let start = Instant::now();
        let report = session.train().expect("training");
        (report, start.elapsed().as_secs_f64())
    };

    let mut records = Vec::new();
    for &(p, c) in shapes {
        let (sim, sim_wall) = train(p, c, TransportSelect::Simulator);
        let (sock, sock_wall) = train(p, c, TransportSelect::UnixSocket(launch.clone()));

        // The cross-transport contract: the socket backend replays the exact
        // schedule the simulator models — losses and every deterministic
        // counter bit-identical, per epoch.
        let identical = sim.epochs.len() == sock.epochs.len()
            && sim.epochs.iter().zip(&sock.epochs).all(|(a, b)| {
                a.mean_loss.to_bits() == b.mean_loss.to_bits()
                    && a.comm.words_sent == b.comm.words_sent
                    && a.comm.messages == b.comm.messages
                    && a.comm.cache_hits == b.comm.cache_hits
                    && a.comm.cache_misses == b.comm.cache_misses
                    && a.comm.words_saved == b.comm.words_saved
            });
        assert!(identical, "p={p} c={c}: socket transport diverged from the simulator");

        let summarize = |r: &TrainingReport| {
            let modeled: f64 = r.epochs.iter().map(|e| e.modeled_epoch_seconds()).sum();
            let words: usize = r.epochs.iter().map(|e| e.comm.words_sent).sum();
            let messages: usize = r.epochs.iter().map(|e| e.comm.messages).sum();
            let hits: usize = r.epochs.iter().map(|e| e.comm.cache_hits).sum();
            let misses: usize = r.epochs.iter().map(|e| e.comm.cache_misses).sum();
            let saved: usize = r.epochs.iter().map(|e| e.comm.words_saved).sum();
            (modeled, words, messages, hits, misses, saved)
        };
        let fit_comm = |words: usize, messages: usize| {
            (fit_alpha * messages as f64 + fit_beta * words as f64) / (p * epochs) as f64
        };
        for (transport, report, wall) in
            [("simulator", &sim, sim_wall), ("socket", &sock, sock_wall)]
        {
            let (modeled, words, messages, hits, misses, saved) = summarize(report);
            records.push(TransportRecord {
                p,
                c,
                transport,
                epochs,
                wall_s: wall,
                modeled_epoch_s: modeled,
                measured_epoch_s: wall / epochs as f64,
                fit_comm_epoch_s: fit_comm(words, messages),
                fit_alpha_s: fit_alpha,
                fit_beta_s_per_word: fit_beta,
                words_total: words,
                messages,
                cache_hits: hits,
                cache_misses: misses,
                words_saved: saved,
                identical_to_simulator: identical,
            });
        }
    }

    let workload = Workload {
        name: "transport_epoch",
        detail: format!(
            "distributed GraphSAGE [10, 5] training, replicated backend + EpochPinned cache, \
             in-process simulator vs Unix-socket rank processes; products-like scale {scale} \
             (f = {feature_dim}, batch {batch_size}, bulk k = 2, {epochs} epochs), stress cost \
             model alpha = {:.1e}s beta = {:.1e}s/word; probe sizes {sizes:?} x {rounds} rounds",
            cost.alpha, cost.beta
        ),
        items: epochs,
        throughput_unit: "epochs/run",
    };
    print_transport_records(&records);
    write_transport_json(&out_dir.join("BENCH_transport.json"), &workload, &records);
    println!("\nSocket transport byte-identical to the simulator on every shape.");
}

/// One measured (offered QPS × coalescing window) cell of the serving sweep.
struct ServeRecord {
    /// Offered load of the open-loop generator (requests per virtual second).
    qps: usize,
    /// Coalescing window in microseconds; `0` disables micro-bulking.
    window_us: usize,
    requests_offered: usize,
    requests_served: usize,
    batches: usize,
    /// `round(served / batches * 1000)` — the coalescing factor as an
    /// integer so the CI gate can compare it exactly.
    coalescing_x1000: u64,
    hot_hits: usize,
    hot_misses: usize,
    hot_hit_rate: f64,
    shed_admission: usize,
    shed_timeout: usize,
    /// All-to-allv words actually charged over the run (hot-tier and cache
    /// hits avoid their share).
    words_total: usize,
    messages: usize,
    /// Served requests per virtual second of makespan.
    sustained_qps: f64,
    /// Virtual-time latency digest over the served requests.
    latency: LatencySummary,
    /// Measured wall seconds of the replay (machine-dependent, soft).
    wall_s: f64,
    /// Two fresh same-seed replays produced bit-identical counters, books
    /// and latencies.
    identical_across_replays: bool,
}

fn write_serve_json(path: &std::path::Path, workload: &Workload, records: &[ServeRecord]) {
    let mut out = json_header(workload);
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"qps\": {}, \"window_us\": {}, \"requests_offered\": {}, \
             \"requests_served\": {}, \"batches\": {}, \"coalescing_x1000\": {}, \
             \"hot_hits\": {}, \"hot_misses\": {}, \"hot_hit_rate\": {}, \
             \"shed_admission\": {}, \"shed_timeout\": {}, \"words_total\": {}, \
             \"messages\": {}, \"sustained_qps\": {}, \"mean_s\": {}, \"p50_s\": {}, \
             \"p99_s\": {}, \"p999_s\": {}, \"max_s\": {}, \"wall_s\": {}, \
             \"identical_across_replays\": {}}}{}\n",
            r.qps,
            r.window_us,
            r.requests_offered,
            r.requests_served,
            r.batches,
            r.coalescing_x1000,
            r.hot_hits,
            r.hot_misses,
            json_f64(r.hot_hit_rate),
            r.shed_admission,
            r.shed_timeout,
            r.words_total,
            r.messages,
            json_f64(r.sustained_qps),
            json_f64(r.latency.mean),
            json_f64(r.latency.p50),
            json_f64(r.latency.p99),
            json_f64(r.latency.p999),
            json_f64(r.latency.max),
            json_f64(r.wall_s),
            r.identical_across_replays,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn print_serve_records(records: &[ServeRecord]) {
    println!("\n== Serving tier: Zipf open-loop, virtual-time latency ==");
    println!(
        "{:>6} {:>9} {:>7} {:>7} {:>7} {:>7}  {:>9}  {:>9}  {:>9}  {:>6}  {:>5}  {:>9}",
        "qps",
        "window_us",
        "offered",
        "served",
        "shed",
        "coal_x",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "hot_%",
        "ident",
        "sust_qps"
    );
    for r in records {
        println!(
            "{:>6} {:>9} {:>7} {:>7} {:>7} {:>6.2}x  {:>9.3}  {:>9.3}  {:>9.3}  {:>5.1}%  {:>5}  \
             {:>9.0}",
            r.qps,
            r.window_us,
            r.requests_offered,
            r.requests_served,
            r.shed_admission + r.shed_timeout,
            r.coalescing_x1000 as f64 / 1000.0,
            r.latency.p50 * 1e3,
            r.latency.p99 * 1e3,
            r.latency.p999 * 1e3,
            r.hot_hit_rate * 100.0,
            r.identical_across_replays,
            r.sustained_qps,
        );
    }
}

/// The `--serve` sweep: trains one snapshot, then drives a fresh
/// `ServingSession` per (offered QPS × coalescing window) cell with the
/// same Zipf open-loop trace generator, replaying every cell twice and
/// asserting the deterministic virtual-time counters are bit-identical.
/// Asserts the tentpole latency claim — at the overloaded QPS level,
/// coalescing lowers p99 versus the window-0 (no-bulking) configuration —
/// and writes `BENCH_serve.json`.
fn run_serve_sweep(smoke: bool, out_dir: &std::path::Path) {
    use dmbs_gnn::{RequestTrace, ServeReport, ServingConfig, ServingSession, TrainingSession};
    use dmbs_graph::datasets::{build_dataset, DatasetConfig};
    use std::sync::Arc;

    // The two offered loads straddle the window-0 saturation point of the
    // modeled service time (~1 / seconds_per_batch ≈ 4.5k QPS): the low
    // level is stable everywhere, the high level overloads the un-coalesced
    // server (queueing + admission shed) while the micro-bulked one absorbs
    // it — the p99 gap the acceptance gate asserts.
    let qps_levels: [usize; 2] = [2000, 8000];
    let windows_us: [usize; 2] = [0, 1000];
    let (scale, feature_dim, num_requests, hot_capacity) =
        if smoke { (7, 16, 300, 32) } else { (10, 32, 4000, 128) };
    if smoke {
        println!("serve smoke mode: tiny snapshot, full QPS x window sweep + replay identity");
    }

    let mut cfg = DatasetConfig::products_like(scale);
    cfg.feature_dim = feature_dim;
    cfg.num_classes = 8;
    cfg.train_fraction = 0.5;
    let dataset = Arc::new(build_dataset(&cfg, &mut StdRng::seed_from_u64(33)).expect("dataset"));
    let n = dataset.num_vertices();
    let batch_size = (dataset.train_set.len() / 8).max(8);

    // One trained snapshot, shared by every cell: serving is what varies.
    let training = TrainingSession::builder()
        .dataset(Arc::clone(&dataset))
        .sampler(GraphSageSampler::new(vec![10, 5]).with_self_loops())
        .backend(LocalBackend::new(BulkSamplerConfig::new(batch_size, 2)).expect("bulk config"))
        .hidden_dim(32)
        .learning_rate(0.05)
        .epochs(1)
        .seed(42)
        .without_evaluation()
        .build()
        .expect("training session");
    let (_, snapshot) = training.train_and_export().expect("training");
    println!(
        "snapshot: {} layers, f = {}, {} classes over {n} vertices (batch {batch_size})",
        snapshot.num_layers(),
        snapshot.feature_dim(),
        snapshot.num_classes()
    );

    let replay = |qps: usize, window_us: usize| -> ServeReport {
        let config = ServingConfig {
            coalesce_window: window_us as f64 * 1e-6,
            hot_capacity,
            seed: 7,
            ..ServingConfig::default()
        };
        let mut session = ServingSession::new(
            Arc::clone(&dataset),
            GraphSageSampler::new(vec![10, 5]).with_self_loops(),
            snapshot.clone(),
            config,
        )
        .expect("serving session");
        // Same trace seed at every cell: the vertex sequence is identical
        // across QPS levels (interarrival gaps just scale), so the cells
        // differ only in load and window.
        let trace = RequestTrace::open_loop(num_requests, qps as f64, 1.1, n, 11);
        session.run_trace(&trace).expect("trace replay")
    };

    let mut records = Vec::new();
    for &qps in &qps_levels {
        for &window_us in &windows_us {
            let first = replay(qps, window_us);
            let second = replay(qps, window_us);
            // The determinism guard: queue dynamics live in virtual time,
            // so a fresh same-seed session must reproduce every counter,
            // every modeled word, and every latency sample bit-for-bit.
            let identical = first.stats == second.stats
                && first.comm.words_sent == second.comm.words_sent
                && first.comm.messages == second.comm.messages
                && first.latencies.len() == second.latencies.len()
                && first
                    .latencies
                    .iter()
                    .zip(&second.latencies)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "qps={qps} window={window_us}us: replay diverged");
            let stats = first.stats;
            records.push(ServeRecord {
                qps,
                window_us,
                requests_offered: stats.requests_offered,
                requests_served: stats.requests_served,
                batches: stats.batches,
                coalescing_x1000: (stats.coalescing_factor() * 1000.0).round() as u64,
                hot_hits: stats.hot_hits,
                hot_misses: stats.hot_misses,
                hot_hit_rate: stats.hot_hit_rate().unwrap_or(0.0),
                shed_admission: stats.shed_admission,
                shed_timeout: stats.shed_timeout,
                words_total: first.comm.words_sent,
                messages: first.comm.messages,
                sustained_qps: first.sustained_qps(),
                latency: LatencySummary::from_samples(&first.latencies),
                wall_s: first.wall_s,
                identical_across_replays: identical,
            });
        }
    }

    // The tentpole claim, asserted before anything is written: at the
    // overloaded QPS level, micro-bulk coalescing must lower tail latency
    // versus serving each request alone.
    let high = *qps_levels.iter().max().expect("non-empty sweep");
    let p99_of = |window_us: usize| {
        records
            .iter()
            .find(|r| r.qps == high && r.window_us == window_us)
            .expect("cell measured")
            .latency
            .p99
    };
    let (p99_solo, p99_coalesced) = (p99_of(0), p99_of(windows_us[1]));
    assert!(
        p99_coalesced < p99_solo,
        "coalescing must cut p99 at {high} QPS: window=0 p99 {p99_solo:.6}s vs \
         window={}us p99 {p99_coalesced:.6}s",
        windows_us[1]
    );

    let workload = Workload {
        name: "serve_openloop",
        detail: format!(
            "open-loop Zipf(1.1) inference serving of a GraphSAGE [10, 5] snapshot on \
             products-like scale {scale} (f = {feature_dim}, {num_requests} requests per cell, \
             hot capacity {hot_capacity}); virtual-time queueing from the modeled service \
             time, {} QPS levels x {} coalescing windows, every cell replayed twice",
            qps_levels.len(),
            windows_us.len()
        ),
        items: num_requests,
        throughput_unit: "requests/cell",
    };
    print_serve_records(&records);
    write_serve_json(&out_dir.join("BENCH_serve.json"), &workload, &records);
    println!(
        "\nAll cells replay-identical; coalescing cut p99 at {high} QPS from {:.3}ms to {:.3}ms.",
        p99_solo * 1e3,
        p99_coalesced * 1e3
    );
}

/// Object-safe epoch runner so the GraphSAGE and LADIES sweeps share one
/// measurement loop.
trait SamplerEpoch {
    fn epoch(
        &self,
        backend: &LocalBackend,
        a: &CsrMatrix,
        batches: &[Vec<usize>],
    ) -> (Vec<dmbs_sampling::MinibatchSample>, dmbs_comm::PhaseProfile);
    fn describe(&self) -> String;
}

impl SamplerEpoch for GraphSageSampler {
    fn epoch(
        &self,
        backend: &LocalBackend,
        a: &CsrMatrix,
        batches: &[Vec<usize>],
    ) -> (Vec<dmbs_sampling::MinibatchSample>, dmbs_comm::PhaseProfile) {
        let epoch = backend.sample_epoch(self, a, batches, 7).expect("epoch");
        (epoch.output.minibatches, epoch.output.profile)
    }
    fn describe(&self) -> String {
        format!("GraphSAGE {:?}", self.fanouts())
    }
}

impl SamplerEpoch for LadiesSampler {
    fn epoch(
        &self,
        backend: &LocalBackend,
        a: &CsrMatrix,
        batches: &[Vec<usize>],
    ) -> (Vec<dmbs_sampling::MinibatchSample>, dmbs_comm::PhaseProfile) {
        let epoch = backend.sample_epoch(self, a, batches, 7).expect("epoch");
        (epoch.output.minibatches, epoch.output.profile)
    }
    fn describe(&self) -> String {
        format!("LADIES {} layers x s = {}", self.num_layers(), self.samples_per_layer())
    }
}

//! Derive macros for the offline `serde` stand-in.
//!
//! Each derive emits a trivial trait impl for the deriving type (or nothing
//! when the type is generic, which the dmbs workspace never is), keeping the
//! marker traits honest without pulling in `syn`/`quote`.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier following the `struct`/`enum`/`union`
/// keyword, returning `None` when the type has generic parameters (no `impl`
/// is emitted for those).
fn type_ident(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = &tree {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // A `<` right after the name means generics: bail out.
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

/// No-op replacement for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_ident(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap(),
        None => TokenStream::new(),
    }
}

/// No-op replacement for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_ident(input) {
        Some(name) => {
            format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
        }
        None => TokenStream::new(),
    }
}

//! Quickstart: build a synthetic graph, bulk-sample minibatches through a
//! `SamplingBackend`, and train a small GraphSAGE model with the
//! `TrainingSession` streaming pipeline.
//!
//! Run with `cargo run --release --example quickstart`.

use dmbs::gnn::TrainingSession;
use dmbs::graph::datasets::{build_dataset, DatasetConfig};
use dmbs::sampling::{BulkSamplerConfig, GraphSageSampler, LocalBackend, SamplingBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A scaled-down stand-in for OGB Products: an R-MAT graph with average
    //    degree ~53, planted-partition labels and learnable features.
    let mut config = DatasetConfig::products_like(10); // 1024 vertices
    config.feature_dim = 32;
    config.num_classes = 8;
    config.train_fraction = 0.5;
    let dataset = build_dataset(&config, &mut StdRng::seed_from_u64(1))?;
    println!(
        "dataset: {} vertices, {} edges, average degree {:.1}",
        dataset.num_vertices(),
        dataset.num_edges(),
        dataset.graph.average_degree()
    );

    // 2. Bulk-sample four minibatches at once through the unified backend API
    //    (Algorithm 1 of the paper behind `SamplingBackend::sample_epoch`).
    let sampler = GraphSageSampler::new(vec![10, 5]);
    let batches: Vec<Vec<usize>> =
        dataset.train_set.chunks(32).take(4).map(<[usize]>::to_vec).collect();
    let backend = LocalBackend::new(BulkSamplerConfig::new(32, batches.len()))?;
    let epoch = backend.sample_epoch(&sampler, dataset.graph.adjacency(), &batches, 2)?;
    println!(
        "bulk-sampled {} minibatches, {} edges total, sampling compute {:.4}s",
        epoch.num_batches(),
        epoch.output.total_edges(),
        epoch.output.profile.total_compute()
    );

    // 3. Train a 2-layer GraphSAGE model end to end with the streaming
    //    session: bulk group g+1 samples while group g trains (§6).
    let session = TrainingSession::builder()
        .dataset(dataset)
        .sampler(GraphSageSampler::new(vec![10, 5]).with_self_loops())
        .backend(LocalBackend::new(BulkSamplerConfig::new(32, 4))?)
        .hidden_dim(32)
        .learning_rate(0.05)
        .epochs(3)
        .seed(3)
        .build()?;
    let report = session.train()?;
    for epoch in &report.epochs {
        println!(
            "epoch {}: loss {:.3}, sampling {:.4}s, feature fetch {:.4}s, propagation {:.4}s",
            epoch.epoch,
            epoch.mean_loss,
            epoch.sampling_time(),
            epoch.feature_fetch_time(),
            epoch.propagation_time()
        );
    }
    println!("test accuracy: {:.3}", report.test_accuracy.unwrap_or(0.0));
    Ok(())
}

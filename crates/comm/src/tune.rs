//! Cost-model-driven auto-tuner: the §5.2.1 analytical model promoted from
//! documentation to a decision procedure.
//!
//! Nine PRs of knobs interact — cache mode, wire codec, overlapped schedule —
//! and this module picks among them *offline*, from first principles plus a
//! handful of cheap probe epochs, in the MLSYSIM spirit of model-guided
//! systems decisions:
//!
//! ```text
//!   probe ──▶ fit ──▶ search ──▶ apply
//!   (1-epoch runs     (TuningModel:      (valid grid,        (TrainingSession
//!    book words,       α·messages +       arg-min of the      builder().auto(),
//!    bytes, compute    β·bytes/8, per-    predicted epoch     perf_baseline
//!    per phase)        knob terms)        time)               --autotune)
//! ```
//!
//! The model combines **measured** per-phase compute from
//! [`PhaseProfile`] with **predicted** α–β communication from
//! [`CostModel`], extended with one term per knob:
//!
//! * **cache words-saved** — the [`CacheKnob::EpochPinned`] candidate is
//!   charged the pinned probe's word count; the uncached candidate the
//!   baseline probe's.  The two are tied by the double-entry identity
//!   `words(pinned) + words_saved(pinned) == words(uncached)`, which
//!   [`TuningModel::fit`] verifies.
//! * **codec bytes-on-wire** — lossy candidates are credited the
//!   `bytes_saved` a one-epoch probe of that codec actually booked, so the β
//!   charge follows real encoded bytes (including the Int8 per-row scale
//!   overhead) rather than an idealised ratio.
//! * **overlap credit** — the overlapped candidate is credited the hidden
//!   seconds a probe of the overlapped schedule measured, capped at the
//!   candidate's own communication bill ([`CostModel::overlap_credit`]
//!   semantics: you cannot hide more than you send).
//!
//! Missing probes degrade gracefully: a knob whose probe was not run scores
//! **no benefit**, so it ties with the cheaper-to-probe candidate and the
//! deterministic lexicographic tie-break keeps the earlier (more
//! conservative) choice.
//!
//! The searched grid is deliberately the *schedule* knobs at a fixed
//! `(p, c)` shape — the knobs a built session can change without resampling
//! or repartitioning.  The remaining knobs ((p, c) itself, bulk group size,
//! gradient top-k, parallelism, workspace reuse) are covered knob-by-knob in
//! the repository's `TUNING.md` guide.

use crate::codec::Codec;
use crate::cost::{CommStats, CostModel};
use crate::error::CommError;
use crate::grid::ProcessGrid;
use crate::profile::{Phase, PhaseProfile};
use crate::Result;
use std::fmt;

/// The feature-cache knob of a candidate schedule.
///
/// This mirrors the session-level cache configuration (`FeatureCacheConfig`
/// in the `gnn` crate) without depending on it, so the tuner stays a pure
/// `comm`-layer component.  Declaration order is the lexicographic rank used
/// by the deterministic tie-break: `Off < EpochPinned < Lru`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKnob {
    /// No cache: every minibatch step fetches its frontier rows fresh.
    Off,
    /// Per-bulk-group prefetch pinned for the epoch — each remote row
    /// crosses the wire at most once per epoch.
    EpochPinned,
    /// Byte-budgeted read-through LRU cache.  Scored **pessimistically**
    /// (no savings credited): how much an LRU with an arbitrary budget saves
    /// depends on access locality the probes do not measure, and the tuner
    /// never claims a benefit it cannot predict.
    Lru {
        /// Cache capacity in bytes.
        byte_budget: usize,
    },
}

impl CacheKnob {
    /// Lower-case name used by harness JSON records ("off", "pinned",
    /// "lru").
    pub fn name(self) -> &'static str {
        match self {
            CacheKnob::Off => "off",
            CacheKnob::EpochPinned => "pinned",
            CacheKnob::Lru { .. } => "lru",
        }
    }

    /// Lexicographic rank of the cache knob (its position in the canonical
    /// enumeration order).
    fn rank(self) -> usize {
        match self {
            CacheKnob::Off => 0,
            CacheKnob::EpochPinned => 1,
            CacheKnob::Lru { .. } => 2,
        }
    }
}

/// Lexicographic rank of a codec in the canonical enumeration order
/// (`Exact < Fp16 < Int8`).
fn codec_rank(codec: Codec) -> usize {
    match codec {
        Codec::Exact => 0,
        Codec::Fp16 => 1,
        Codec::Int8 => 2,
    }
}

/// One candidate schedule over the tuned knobs: cache mode, wire codec,
/// overlapped pipeline.
///
/// ```
/// use dmbs_comm::tune::{CacheKnob, TuningChoice};
/// use dmbs_comm::Codec;
///
/// let default = TuningChoice::baseline();
/// assert_eq!(default.cache, CacheKnob::Off);
/// assert_eq!(default.codec, Codec::Exact);
/// assert!(!default.overlap);
/// assert_eq!(default.to_string(), "cache=off codec=exact overlap=off");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuningChoice {
    /// Feature-cache mode.
    pub cache: CacheKnob,
    /// Wire codec of the feature-fetch lanes.
    pub codec: Codec,
    /// Whether the distributed training loop runs the software-pipelined
    /// (overlapped) schedule.
    pub overlap: bool,
}

impl TuningChoice {
    /// The default (untuned) schedule: no cache, bit-exact codec,
    /// synchronous pipeline.  Always the first candidate of every grid, so
    /// an all-ties search — e.g. a shape with no communication at all —
    /// deterministically keeps the default.
    pub fn baseline() -> Self {
        TuningChoice { cache: CacheKnob::Off, codec: Codec::Exact, overlap: false }
    }

    /// Lexicographic key `(cache, codec, overlap)` implementing the
    /// deterministic tie-break order.
    fn lex_key(&self) -> (usize, usize, usize) {
        (self.cache.rank(), codec_rank(self.codec), usize::from(self.overlap))
    }
}

impl fmt::Display for TuningChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache={} codec={} overlap={}",
            self.cache.name(),
            self.codec.name(),
            if self.overlap { "on" } else { "off" }
        )
    }
}

/// The books of one probe epoch: world-summed wire counters plus
/// max-across-ranks measured seconds, extracted from a training run's
/// [`PhaseProfile`] and [`CommStats`] via [`ProbeEpoch::from_books`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProbeEpoch {
    /// Words sent, summed across ranks.
    pub words_sent: usize,
    /// Point-to-point messages, summed across ranks.
    pub messages: usize,
    /// Exact bytes on the wire, summed across ranks.
    pub bytes_on_wire: usize,
    /// Bytes a wire codec kept off the wire (zero under `Codec::Exact`).
    pub bytes_saved: usize,
    /// Words the feature cache kept off the wire (zero with the cache off).
    pub words_saved: usize,
    /// Measured compute seconds (max across ranks, all phases).
    pub compute_s: f64,
    /// Measured propagation-phase compute seconds (max across ranks) — the
    /// budget an overlapped schedule hides communication behind.
    pub propagation_compute_s: f64,
    /// Modeled communication seconds a pipelined probe actually hid (zero
    /// for synchronous probes).
    pub overlapped_s: f64,
}

impl ProbeEpoch {
    /// Extracts a probe's books from an epoch's phase profile
    /// (max-across-ranks seconds) and communication statistics (world-summed
    /// counters).
    pub fn from_books(profile: &PhaseProfile, stats: &CommStats) -> Self {
        ProbeEpoch {
            words_sent: stats.words_sent,
            messages: stats.messages,
            bytes_on_wire: stats.bytes_on_wire,
            bytes_saved: stats.bytes_saved,
            words_saved: stats.words_saved,
            compute_s: profile.total_compute(),
            propagation_compute_s: profile.compute(Phase::Propagation),
            overlapped_s: profile.total_overlap(),
        }
    }
}

/// The probe epochs a [`TuningModel`] is fitted from.  Only `baseline` and
/// `pinned` are required; each optional probe unlocks the per-knob term it
/// calibrates, and a knob without its probe scores no benefit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProbeSet {
    /// The default schedule: cache off, `Codec::Exact`, synchronous.
    pub baseline: ProbeEpoch,
    /// Cache [`CacheKnob::EpochPinned`], `Codec::Exact`, synchronous.
    pub pinned: ProbeEpoch,
    /// Cache pinned, `Codec::Fp16`, synchronous — calibrates the fp16
    /// bytes-on-wire term.
    pub fp16: Option<ProbeEpoch>,
    /// Cache pinned, `Codec::Int8`, synchronous — calibrates the int8
    /// bytes-on-wire term (per-row scale overhead included).
    pub int8: Option<ProbeEpoch>,
    /// Cache pinned, `Codec::Exact`, **overlapped** schedule — calibrates
    /// the overlap credit from the hidden seconds it books.
    pub overlapped: Option<ProbeEpoch>,
}

/// The predicted cost breakdown of one candidate, per epoch.
///
/// Counters (`words`, `messages`, `bytes_on_wire`) are pure functions of the
/// probe books, hence deterministic and CI-gateable exactly; the seconds mix
/// in measured compute and are gated softly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Predicted words on the wire per epoch (world-summed).
    pub words: usize,
    /// Predicted messages per epoch (world-summed).
    pub messages: usize,
    /// Predicted bytes on the wire per epoch (world-summed).
    pub bytes_on_wire: usize,
    /// Predicted α–β communication seconds per epoch (per-rank share of the
    /// world-summed bill: `(α·messages + β·bytes/8) / p`).
    pub comm_s: f64,
    /// Predicted communication seconds hidden behind compute (zero for
    /// synchronous candidates).
    pub overlap_credit_s: f64,
    /// Measured compute seconds per epoch (the baseline probe's, common to
    /// every candidate so the ranking isolates the schedule effect).
    pub compute_s: f64,
}

impl CostBreakdown {
    /// Predicted effective epoch seconds:
    /// `compute + comm − overlap_credit`.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s - self.overlap_credit_s
    }

    /// The predicted communication seconds as integer nanoseconds — a
    /// deterministic counter suitable for exact CI gating.
    pub fn comm_ns(&self) -> u64 {
        (self.comm_s * 1e9).round() as u64
    }
}

/// One candidate together with its predicted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredChoice {
    /// The candidate schedule.
    pub choice: TuningChoice,
    /// Its predicted per-epoch cost breakdown.
    pub cost: CostBreakdown,
}

/// The valid knob grid at a fixed `(p, c)` process-grid shape.
///
/// Validity rules (each also unit-tested):
///
/// * `c` must divide `p` (the 1.5D grid constraint, validated via
///   [`ProcessGrid`] at construction);
/// * `overlap` requires `c > 1` **and** the [`CacheKnob::EpochPinned`]
///   cache — only the pinned prefetch all-to-allv is hoisted by the
///   pipelined schedule, and a single-column shape leaves it nothing to
///   hide behind;
/// * [`CacheKnob::Lru`] candidates appear only when a byte budget was
///   supplied via [`TuningGrid::with_lru_budget`];
/// * lossy codecs appear only after [`TuningGrid::with_lossy`] — bit-exact
///   training is the default and quantization is strictly opt-in.
///
/// ```
/// use dmbs_comm::tune::TuningGrid;
///
/// let grid = TuningGrid::new(4, 2).unwrap().with_lossy(true);
/// let candidates = grid.candidates();
/// // Every enumerated candidate is valid, and the default schedule is
/// // always the first (the all-ties winner).
/// assert!(candidates.iter().all(|choice| grid.is_valid(choice)));
/// assert_eq!(candidates[0], dmbs_comm::tune::TuningChoice::baseline());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningGrid {
    p: usize,
    c: usize,
    lru_budget: Option<usize>,
    allow_lossy: bool,
}

impl TuningGrid {
    /// Creates the grid for a `(p, c)` shape.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] when the shape is not a valid
    /// 1.5D process grid (`c` must divide `p`, both positive).
    pub fn new(p: usize, c: usize) -> Result<Self> {
        ProcessGrid::new(p, c)?;
        Ok(TuningGrid { p, c, lru_budget: None, allow_lossy: false })
    }

    /// Admits [`CacheKnob::Lru`] candidates with this byte budget.  A zero
    /// budget admits nothing.
    pub fn with_lru_budget(mut self, byte_budget: usize) -> Self {
        self.lru_budget = if byte_budget > 0 { Some(byte_budget) } else { None };
        self
    }

    /// Admits the lossy codecs (`Fp16`, `Int8`) to the grid.
    pub fn with_lossy(mut self, allow: bool) -> Self {
        self.allow_lossy = allow;
        self
    }

    /// Number of ranks `p` of the shape.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Replication factor `c` of the shape.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Whether a candidate is a member of this grid.
    pub fn is_valid(&self, choice: &TuningChoice) -> bool {
        let cache_ok = match choice.cache {
            CacheKnob::Off | CacheKnob::EpochPinned => true,
            CacheKnob::Lru { byte_budget } => self.lru_budget == Some(byte_budget),
        };
        let codec_ok = choice.codec == Codec::Exact || self.allow_lossy;
        let overlap_ok = !choice.overlap || (self.c > 1 && choice.cache == CacheKnob::EpochPinned);
        cache_ok && codec_ok && overlap_ok
    }

    /// Enumerates every valid candidate in canonical lexicographic order:
    /// cache (`Off < EpochPinned < Lru`), then codec
    /// (`Exact < Fp16 < Int8`), then overlap (`off < on`).  The first
    /// candidate is always [`TuningChoice::baseline`].
    pub fn candidates(&self) -> Vec<TuningChoice> {
        let mut caches = vec![CacheKnob::Off, CacheKnob::EpochPinned];
        if let Some(byte_budget) = self.lru_budget {
            caches.push(CacheKnob::Lru { byte_budget });
        }
        let codecs: &[Codec] = if self.allow_lossy {
            &[Codec::Exact, Codec::Fp16, Codec::Int8]
        } else {
            &[Codec::Exact]
        };
        let mut out = Vec::new();
        for &cache in &caches {
            for &codec in codecs {
                for overlap in [false, true] {
                    let choice = TuningChoice { cache, codec, overlap };
                    if self.is_valid(&choice) {
                        out.push(choice);
                    }
                }
            }
        }
        debug_assert!(out.windows(2).all(|w| w[0].lex_key() < w[1].lex_key()));
        out
    }
}

/// The fitted predictor: a [`CostModel`] plus calibrated per-knob terms from
/// a [`ProbeSet`].
///
/// ```
/// use dmbs_comm::tune::{CacheKnob, ProbeEpoch, ProbeSet, TuningGrid, TuningModel, search};
/// use dmbs_comm::CostModel;
///
/// // Synthetic probe books of a shape where the pinned cache halves the
/// // wire bill: 2000 words uncached, 1000 pinned + 1000 saved.
/// let baseline = ProbeEpoch {
///     words_sent: 2000,
///     messages: 80,
///     bytes_on_wire: 16000,
///     compute_s: 0.004,
///     propagation_compute_s: 0.003,
///     ..ProbeEpoch::default()
/// };
/// let pinned = ProbeEpoch {
///     words_sent: 1000,
///     messages: 40,
///     bytes_on_wire: 8000,
///     words_saved: 1000,
///     compute_s: 0.004,
///     propagation_compute_s: 0.003,
///     ..ProbeEpoch::default()
/// };
/// let probes = ProbeSet { baseline, pinned, ..ProbeSet::default() };
/// let model = TuningModel::fit(CostModel::new(2.0e-4, 5.0e-8), 4, probes).unwrap();
///
/// let grid = TuningGrid::new(4, 2).unwrap();
/// let outcome = search(&model, &grid);
/// // Fewer words and fewer messages: the pinned cache wins.
/// assert_eq!(outcome.chosen().choice.cache, CacheKnob::EpochPinned);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningModel {
    cost: CostModel,
    ranks: usize,
    probes: ProbeSet,
}

impl TuningModel {
    /// Fits the model from probe books, verifying the double-entry
    /// identities that tie the probes together.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidConfig`] when `ranks == 0`, when a probe
    /// that must be bit-exact booked saved bytes, or when the probes violate
    /// the cache identity
    /// `words(pinned) + words_saved(pinned) == words(baseline)` or the codec
    /// identity `bytes_on_wire + bytes_saved == 8 × words_sent`.
    pub fn fit(cost: CostModel, ranks: usize, probes: ProbeSet) -> Result<Self> {
        if ranks == 0 {
            return Err(CommError::InvalidConfig("tuning model requires at least one rank".into()));
        }
        for (name, probe) in [("baseline", &probes.baseline), ("pinned", &probes.pinned)] {
            if probe.bytes_on_wire != 8 * probe.words_sent || probe.bytes_saved != 0 {
                return Err(CommError::InvalidConfig(format!(
                    "{name} probe must run the exact codec: booked {} wire bytes + {} saved \
                     for {} words",
                    probe.bytes_on_wire, probe.bytes_saved, probe.words_sent
                )));
            }
        }
        if probes.pinned.words_sent + probes.pinned.words_saved != probes.baseline.words_sent {
            return Err(CommError::InvalidConfig(format!(
                "cache books don't balance: pinned sent {} + saved {} != baseline sent {}",
                probes.pinned.words_sent, probes.pinned.words_saved, probes.baseline.words_sent
            )));
        }
        for (name, probe) in [("fp16", probes.fp16.as_ref()), ("int8", probes.int8.as_ref())] {
            let Some(probe) = probe else { continue };
            if probe.words_sent != probes.pinned.words_sent {
                return Err(CommError::InvalidConfig(format!(
                    "{name} probe sent {} words but the pinned probe sent {}; codecs change \
                     bytes, never words",
                    probe.words_sent, probes.pinned.words_sent
                )));
            }
            if probe.bytes_on_wire + probe.bytes_saved != 8 * probe.words_sent {
                return Err(CommError::InvalidConfig(format!(
                    "{name} probe's byte books don't balance: {} on wire + {} saved != 8 × {}",
                    probe.bytes_on_wire, probe.bytes_saved, probe.words_sent
                )));
            }
        }
        if let Some(overlapped) = &probes.overlapped {
            if overlapped.words_sent != probes.pinned.words_sent {
                return Err(CommError::InvalidConfig(format!(
                    "overlapped probe sent {} words but the pinned probe sent {}; the \
                     overlapped schedule never changes the wire books",
                    overlapped.words_sent, probes.pinned.words_sent
                )));
            }
        }
        Ok(TuningModel { cost, ranks, probes })
    }

    /// The α–β cost model the predictions charge.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The number of ranks the probes ran on.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Predicts the per-epoch cost breakdown of one candidate.
    ///
    /// Counters come from the probe books (cache knob selects between the
    /// baseline and pinned word bills; the codec knob subtracts the bytes
    /// its probe saved, scaled conservatively by the candidate's word bill);
    /// seconds charge `(α·messages + β·bytes/8) / p` plus the common
    /// measured compute, minus the calibrated overlap credit.
    pub fn predict(&self, choice: &TuningChoice) -> CostBreakdown {
        let probes = &self.probes;
        let (words, messages) = match choice.cache {
            // The LRU knob is scored pessimistically — see [`CacheKnob::Lru`].
            CacheKnob::Off | CacheKnob::Lru { .. } => {
                (probes.baseline.words_sent, probes.baseline.messages)
            }
            CacheKnob::EpochPinned => (probes.pinned.words_sent, probes.pinned.messages),
        };
        let saved_at_pinned = match choice.codec {
            Codec::Exact => 0,
            Codec::Fp16 => probes.fp16.map_or(0, |p| p.bytes_saved),
            Codec::Int8 => probes.int8.map_or(0, |p| p.bytes_saved),
        };
        // Codec savings were calibrated at the pinned word bill; scale them
        // by the candidate's word bill.  The scaling is conservative for the
        // uncached candidates: their extra words are all compressible
        // feature payload, so the true savings are at least this.
        let bytes_saved = if saved_at_pinned == 0 || probes.pinned.words_sent == 0 {
            0
        } else {
            let scale = words as f64 / probes.pinned.words_sent as f64;
            ((saved_at_pinned as f64 * scale).round() as usize).min(8 * words)
        };
        let bytes_on_wire = 8 * words - bytes_saved;
        let comm_s = (self.cost.alpha * messages as f64
            + self.cost.beta * (bytes_on_wire as f64 / 8.0))
            / self.ranks as f64;
        // Overlap credit: the hidden seconds the overlapped probe actually
        // measured (already capped by the propagation-compute budget),
        // further capped at this candidate's own bill — a schedule cannot
        // hide more communication than it performs.
        let overlap_credit_s = if choice.overlap {
            probes.overlapped.map_or(0.0, |o| self.cost.overlap_credit(comm_s, o.overlapped_s))
        } else {
            0.0
        };
        CostBreakdown {
            words,
            messages,
            bytes_on_wire,
            comm_s,
            overlap_credit_s,
            compute_s: probes.baseline.compute_s,
        }
    }
}

/// The result of a grid search: every candidate scored in canonical order,
/// plus the index of the arg-min.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningOutcome {
    /// Every valid candidate with its predicted cost, in the grid's
    /// canonical lexicographic order.
    pub scored: Vec<ScoredChoice>,
    /// Index of the chosen (arg-min predicted epoch time) candidate in
    /// [`TuningOutcome::scored`].
    pub chosen_index: usize,
}

impl TuningOutcome {
    /// The chosen candidate.
    pub fn chosen(&self) -> &ScoredChoice {
        &self.scored[self.chosen_index]
    }
}

/// Scores every candidate of `grid` under `model` and picks the arg-min of
/// predicted effective epoch seconds.
///
/// Deterministic under ties: candidates are scored in the grid's canonical
/// lexicographic order and a later candidate replaces the incumbent only
/// when **strictly** cheaper, so an all-ties search (e.g. a shape with no
/// communication) keeps [`TuningChoice::baseline`].
pub fn search(model: &TuningModel, grid: &TuningGrid) -> TuningOutcome {
    let scored: Vec<ScoredChoice> = grid
        .candidates()
        .into_iter()
        .map(|choice| ScoredChoice { choice, cost: model.predict(&choice) })
        .collect();
    debug_assert!(!scored.is_empty(), "every grid contains at least the baseline candidate");
    let mut chosen_index = 0;
    for (i, candidate) in scored.iter().enumerate().skip(1) {
        if candidate.cost.total_s() < scored[chosen_index].cost.total_s() {
            chosen_index = i;
        }
    }
    TuningOutcome { scored, chosen_index }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(words: usize, messages: usize, saved: usize) -> ProbeEpoch {
        ProbeEpoch {
            words_sent: words,
            messages,
            bytes_on_wire: 8 * words,
            bytes_saved: 0,
            words_saved: saved,
            compute_s: 0.004,
            propagation_compute_s: 0.003,
            overlapped_s: 0.0,
        }
    }

    fn fitted(probes: ProbeSet) -> TuningModel {
        TuningModel::fit(CostModel::new(2.0e-4, 5.0e-8), 4, probes).expect("books balance")
    }

    fn basic_probes() -> ProbeSet {
        ProbeSet {
            baseline: probe(2000, 80, 0),
            pinned: probe(1000, 40, 1000),
            ..ProbeSet::default()
        }
    }

    #[test]
    fn grid_enumerates_only_valid_candidates() {
        let grid = TuningGrid::new(8, 4).unwrap().with_lru_budget(1 << 16).with_lossy(true);
        let candidates = grid.candidates();
        assert!(!candidates.is_empty());
        for choice in &candidates {
            assert!(grid.is_valid(choice), "enumerated invalid candidate {choice}");
            if choice.overlap {
                assert_eq!(choice.cache, CacheKnob::EpochPinned);
            }
        }
        // Full grid: 3 caches × 3 codecs × sync, plus overlap only for the
        // pinned cache.
        assert_eq!(candidates.len(), 3 * 3 + 3);
        assert_eq!(candidates[0], TuningChoice::baseline());
    }

    #[test]
    fn overlap_requires_wide_shape_and_pinned_cache() {
        let narrow = TuningGrid::new(4, 1).unwrap().with_lru_budget(1 << 16);
        assert!(narrow.candidates().iter().all(|choice| !choice.overlap));
        assert!(!narrow.is_valid(&TuningChoice {
            cache: CacheKnob::EpochPinned,
            codec: Codec::Exact,
            overlap: true,
        }));

        let wide = TuningGrid::new(4, 2).unwrap().with_lru_budget(1 << 16);
        assert!(wide.candidates().iter().any(|choice| choice.overlap));
        for cache in [CacheKnob::Off, CacheKnob::Lru { byte_budget: 1 << 16 }] {
            let choice = TuningChoice { cache, codec: Codec::Exact, overlap: true };
            assert!(!wide.is_valid(&choice), "{choice} must be rejected");
            assert!(!wide.candidates().contains(&choice));
        }
    }

    #[test]
    fn lru_and_lossy_are_opt_in() {
        let plain = TuningGrid::new(4, 2).unwrap();
        assert_eq!(plain.candidates().len(), 3); // off, pinned, pinned+overlap
        assert!(plain
            .candidates()
            .iter()
            .all(|ch| ch.codec == Codec::Exact && !matches!(ch.cache, CacheKnob::Lru { .. })));
        // An Lru candidate with a *different* budget than configured is
        // invalid too.
        let budgeted = plain.with_lru_budget(4096);
        assert!(budgeted.is_valid(&TuningChoice {
            cache: CacheKnob::Lru { byte_budget: 4096 },
            codec: Codec::Exact,
            overlap: false,
        }));
        assert!(!budgeted.is_valid(&TuningChoice {
            cache: CacheKnob::Lru { byte_budget: 8192 },
            codec: Codec::Exact,
            overlap: false,
        }));
    }

    #[test]
    fn grid_rejects_invalid_shapes() {
        assert!(TuningGrid::new(4, 3).is_err());
        assert!(TuningGrid::new(0, 1).is_err());
        assert!(TuningGrid::new(4, 2).is_ok());
    }

    #[test]
    fn all_ties_keeps_the_baseline() {
        // No communication at all: every candidate predicts the same epoch
        // time, so the lexicographically-first (default) schedule wins.
        let probes =
            ProbeSet { baseline: probe(0, 0, 0), pinned: probe(0, 0, 0), ..ProbeSet::default() };
        let model = fitted(probes);
        let grid = TuningGrid::new(4, 2).unwrap().with_lru_budget(1 << 16).with_lossy(true);
        let outcome = search(&model, &grid);
        assert_eq!(outcome.chosen_index, 0);
        assert_eq!(outcome.chosen().choice, TuningChoice::baseline());
        // And the search is deterministic call-over-call.
        assert_eq!(search(&model, &grid), outcome);
    }

    #[test]
    fn pinned_cache_wins_when_it_saves_words() {
        let model = fitted(basic_probes());
        let outcome = search(&model, &TuningGrid::new(4, 2).unwrap());
        assert_eq!(outcome.chosen().choice.cache, CacheKnob::EpochPinned);
        // Without an overlapped probe the overlap knob scores no benefit, so
        // the synchronous schedule is kept by the tie-break.
        assert!(!outcome.chosen().choice.overlap);
        let chosen = outcome.chosen().cost;
        let default = outcome.scored[0].cost;
        assert!(chosen.total_s() < default.total_s());
        assert_eq!(chosen.words, 1000);
        assert_eq!(default.words, 2000);
    }

    #[test]
    fn overlap_probe_unlocks_the_overlap_credit() {
        let mut probes = basic_probes();
        let mut overlapped = probes.pinned;
        overlapped.overlapped_s = 1.0e-4;
        probes.overlapped = Some(overlapped);
        let model = fitted(probes);
        let outcome = search(&model, &TuningGrid::new(4, 2).unwrap());
        let chosen = outcome.chosen();
        assert!(chosen.choice.overlap);
        assert_eq!(chosen.choice.cache, CacheKnob::EpochPinned);
        assert!(chosen.cost.overlap_credit_s > 0.0);
        // The credit never exceeds the candidate's own communication bill.
        assert!(chosen.cost.overlap_credit_s <= chosen.cost.comm_s);
    }

    #[test]
    fn codec_probe_unlocks_lossy_savings() {
        let mut probes = basic_probes();
        let mut int8 = probes.pinned;
        int8.words_saved = 0;
        int8.bytes_saved = 6000; // 8000 exact bytes -> 2000 on the wire
        int8.bytes_on_wire = 8 * int8.words_sent - int8.bytes_saved;
        probes.int8 = Some(int8);
        let model = fitted(probes);

        // Lossy not admitted: the codec stays exact.
        let lossless = search(&model, &TuningGrid::new(4, 2).unwrap());
        assert_eq!(lossless.chosen().choice.codec, Codec::Exact);

        // Lossy admitted: int8's measured byte savings win, and fp16 (no
        // probe, no credited savings) does not.
        let lossy = search(&model, &TuningGrid::new(4, 2).unwrap().with_lossy(true));
        assert_eq!(lossy.chosen().choice.codec, Codec::Int8);
        let chosen = lossy.chosen().cost;
        assert_eq!(chosen.bytes_on_wire, 2000);
        assert!(chosen.comm_s < lossless.chosen().cost.comm_s);
    }

    #[test]
    fn fit_rejects_unbalanced_books() {
        // Cache identity violated.
        let bad = ProbeSet {
            baseline: probe(2000, 80, 0),
            pinned: probe(1500, 40, 1000),
            ..ProbeSet::default()
        };
        assert!(TuningModel::fit(CostModel::default(), 4, bad).is_err());
        // Baseline probe must be bit-exact.
        let mut probes = basic_probes();
        probes.baseline.bytes_saved = 8;
        probes.baseline.bytes_on_wire -= 8;
        assert!(TuningModel::fit(CostModel::default(), 4, probes).is_err());
        // Codec probes never change word counts.
        let mut probes = basic_probes();
        let mut fp16 = probes.pinned;
        fp16.words_sent += 1;
        fp16.bytes_on_wire = 8 * fp16.words_sent;
        probes.fp16 = Some(fp16);
        assert!(TuningModel::fit(CostModel::default(), 4, probes).is_err());
        // Zero ranks rejected.
        assert!(TuningModel::fit(CostModel::default(), 0, basic_probes()).is_err());
    }

    #[test]
    fn probe_books_extraction() {
        let mut profile = PhaseProfile::new();
        profile.add_compute(Phase::Sampling, 0.002);
        profile.add_compute(Phase::Propagation, 0.003);
        profile.add_comm(Phase::FeatureFetch, 0.001);
        profile.add_overlap(Phase::FeatureFetch, 0.0005);
        let model = CostModel::default();
        let mut stats = CommStats::new();
        stats.record(50, &model);
        stats.record(30, &model);
        stats.record(20, &model);
        let probe = ProbeEpoch::from_books(&profile, &stats);
        assert_eq!(probe.words_sent, 100);
        assert_eq!(probe.messages, 3);
        assert_eq!(probe.bytes_on_wire, 800);
        assert!((probe.compute_s - 0.005).abs() < 1e-12);
        assert!((probe.propagation_compute_s - 0.003).abs() < 1e-12);
        assert!((probe.overlapped_s - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn breakdown_arithmetic() {
        let model = fitted(basic_probes());
        let cost = model.predict(&TuningChoice::baseline());
        assert_eq!(cost.bytes_on_wire, 8 * cost.words);
        let expected = (2.0e-4 * 80.0 + 5.0e-8 * 2000.0) / 4.0;
        assert!((cost.comm_s - expected).abs() < 1e-15);
        assert_eq!(cost.comm_ns(), (expected * 1e9).round() as u64);
        assert!((cost.total_s() - (cost.compute_s + cost.comm_s)).abs() < 1e-15);
    }
}

//! Process-per-rank worker dispatch for the Unix-socket transport.
//!
//! Closures cannot cross process boundaries, so the socket backend runs
//! **named workers**: plain functions registered in a [`WorkerRegistry`]
//! that take a [`Communicator`] plus a serialized job and return bytes.
//! The parent (`run_socket_workers`, reached through
//! [`Runtime::run_worker`](crate::Runtime::run_worker)) re-executes the
//! current binary once per rank with the rendezvous environment set:
//!
//! | variable              | meaning                                   |
//! |-----------------------|-------------------------------------------|
//! | `DMBS_WORKER`         | registered worker name to run             |
//! | `DMBS_RANK`           | this process's rank                       |
//! | `DMBS_SIZE`           | world size                                |
//! | `DMBS_SOCKET_DIR`     | rendezvous directory                      |
//! | `DMBS_COST_ALPHA_BITS`| α of the cost model, `f64::to_bits`       |
//! | `DMBS_COST_BETA_BITS` | β of the cost model, `f64::to_bits`       |
//! | `DMBS_TIMEOUT_MS`     | blocking-wait bound in milliseconds       |
//!
//! The α/β bits travel as exact bit patterns so the child's modeled-time
//! books agree with the simulator to the last ulp.  Each child reads the
//! job from `job.bin` in the socket directory, joins the socket mesh, runs
//! the worker, ships `(rank, status, CommStats, bytes)` back over
//! `parent.sock`, and exits.  A child that dies instead of reporting —
//! nonzero exit, signal, or a wedge past the timeout — is mapped to
//! [`CommError::RankPanicked`] (with its stderr attached) after the
//! remaining children are killed, so a rank panic tears the job down
//! gracefully rather than hanging the parent.
//!
//! Binaries that may act as workers call [`run_if_worker`] first thing in
//! `main` (test binaries expose a `socket_worker_shim` test and name it in
//! [`SocketLaunch::worker_args`]); the call is a no-op unless `DMBS_WORKER`
//! is set.

use std::io::Read;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::collectives::{Communicator, Payload};
use crate::cost::{CommStats, CostModel};
use crate::error::CommError;
use crate::socket::{SocketConfig, UnixSocketTransport, DEFAULT_SOCKET_TIMEOUT};
use crate::wire;
use crate::{RankOutput, Result};

/// A worker function dispatchable across process boundaries: job bytes in,
/// result bytes out, errors as strings (which the parent surfaces as
/// [`CommError::WorkerFailed`]).
pub type WorkerFn = fn(&mut Communicator, &[u8]) -> std::result::Result<Vec<u8>, String>;

/// A registry of named workers a binary can run.  Both transports dispatch
/// from the same registry, which is what keeps simulator and socket
/// execution running literally the same code.
#[derive(Default)]
pub struct WorkerRegistry {
    entries: Vec<(&'static str, WorkerFn)>,
}

impl std::fmt::Debug for WorkerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self.entries.iter().map(|(n, _)| *n).collect();
        f.debug_struct("WorkerRegistry").field("workers", &names).finish()
    }
}

impl WorkerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `worker` under `name` (later registrations win).
    pub fn register(&mut self, name: &'static str, worker: WorkerFn) {
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, worker));
    }

    /// Builder-style [`WorkerRegistry::register`].
    pub fn with(mut self, name: &'static str, worker: WorkerFn) -> Self {
        self.register(name, worker);
        self
    }

    /// Looks up a worker by name.
    pub fn find(&self, name: &str) -> Option<WorkerFn> {
        self.entries.iter().find(|(n, _)| *n == name).map(|(_, w)| *w)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }
}

/// How rank processes are launched: the extra argv passed to the re-executed
/// current binary (empty for ordinary binaries whose `main` calls
/// [`run_if_worker`]; libtest binaries pass
/// `["socket_worker_shim", "--exact", "--nocapture"]` to reach their shim
/// test), plus the per-wait timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketLaunch {
    /// Arguments appended to the re-executed binary.
    pub worker_args: Vec<String>,
    /// Bound on every blocking wait (rendezvous, receive, result
    /// collection), in milliseconds.
    pub timeout_ms: u64,
}

impl Default for SocketLaunch {
    fn default() -> Self {
        SocketLaunch {
            worker_args: Vec::new(),
            timeout_ms: DEFAULT_SOCKET_TIMEOUT.as_millis() as u64,
        }
    }
}

impl SocketLaunch {
    /// The launch configuration for a libtest binary: reach the
    /// `socket_worker_shim` test by exact name.  `shim_name` is the test's
    /// full path within the binary (e.g. `"socket_worker_shim"` for an
    /// integration test, `"process::tests::socket_worker_shim"` inside a
    /// library).
    pub fn for_test_binary(shim_name: &str) -> Self {
        SocketLaunch {
            worker_args: vec![
                shim_name.to_string(),
                "--exact".to_string(),
                "--nocapture".to_string(),
            ],
            ..SocketLaunch::default()
        }
    }

    /// Overrides the blocking-wait bound.
    pub fn timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.timeout_ms = timeout_ms;
        self
    }
}

const ENV_WORKER: &str = "DMBS_WORKER";
const ENV_RANK: &str = "DMBS_RANK";
const ENV_SIZE: &str = "DMBS_SIZE";
const ENV_DIR: &str = "DMBS_SOCKET_DIR";
const ENV_ALPHA: &str = "DMBS_COST_ALPHA_BITS";
const ENV_BETA: &str = "DMBS_COST_BETA_BITS";
const ENV_TIMEOUT: &str = "DMBS_TIMEOUT_MS";

const JOB_FILE: &str = "job.bin";
const PARENT_SOCK: &str = "parent.sock";

/// If the rendezvous environment is set, runs the named worker from
/// `registry` and **exits the process** with its status; otherwise returns
/// immediately.  Call this first thing in any binary (or from a test shim)
/// that may be launched as a rank process.
pub fn run_if_worker(registry: &WorkerRegistry) {
    if std::env::var_os(ENV_WORKER).is_none() {
        return;
    }
    let code = match worker_main(registry) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("dmbs worker failed: {message}");
            1
        }
    };
    std::process::exit(code);
}

/// The body of a rank process: join the mesh, run the worker, report back.
/// Every failure is reported over `parent.sock` when possible so the parent
/// gets a typed error instead of inferring one from the exit code.
fn worker_main(registry: &WorkerRegistry) -> std::result::Result<(), String> {
    let name = std::env::var(ENV_WORKER).map_err(|e| format!("{ENV_WORKER}: {e}"))?;
    let rank: usize = std::env::var(ENV_RANK)
        .map_err(|e| format!("{ENV_RANK}: {e}"))?
        .parse()
        .map_err(|e| format!("{ENV_RANK}: {e}"))?;
    let size: usize = std::env::var(ENV_SIZE)
        .map_err(|e| format!("{ENV_SIZE}: {e}"))?
        .parse()
        .map_err(|e| format!("{ENV_SIZE}: {e}"))?;
    let dir = PathBuf::from(std::env::var(ENV_DIR).map_err(|e| format!("{ENV_DIR}: {e}"))?);
    let alpha_bits: u64 = std::env::var(ENV_ALPHA)
        .map_err(|e| format!("{ENV_ALPHA}: {e}"))?
        .parse()
        .map_err(|e| format!("{ENV_ALPHA}: {e}"))?;
    let beta_bits: u64 = std::env::var(ENV_BETA)
        .map_err(|e| format!("{ENV_BETA}: {e}"))?
        .parse()
        .map_err(|e| format!("{ENV_BETA}: {e}"))?;
    let timeout_ms: u64 = std::env::var(ENV_TIMEOUT)
        .unwrap_or_else(|_| DEFAULT_SOCKET_TIMEOUT.as_millis().to_string())
        .parse()
        .map_err(|e| format!("{ENV_TIMEOUT}: {e}"))?;
    let cost = CostModel::new(f64::from_bits(alpha_bits), f64::from_bits(beta_bits));

    let job = std::fs::read(dir.join(JOB_FILE)).map_err(|e| format!("read {JOB_FILE}: {e}"))?;
    let worker = registry
        .find(&name)
        .ok_or_else(|| format!("worker '{name}' is not registered in this binary"))?;

    let config = SocketConfig::new(rank, size, &dir).timeout(Duration::from_millis(timeout_ms));
    let transport = UnixSocketTransport::connect(&config).map_err(|e| e.to_string())?;
    let mut comm = Communicator::from_transport(Box::new(transport), cost);

    let outcome = worker(&mut comm, &job);
    let stats = comm.stats();
    drop(comm); // close the mesh before reporting, so peers see clean EOFs

    let mut report = Vec::new();
    wire::put_usize(&mut report, rank);
    match &outcome {
        Ok(bytes) => {
            wire::put_u64(&mut report, 1);
            stats.encode(&mut report);
            wire::put_bytes(&mut report, bytes);
        }
        Err(message) => {
            wire::put_u64(&mut report, 0);
            stats.encode(&mut report);
            wire::put_str(&mut report, message);
        }
    }
    let mut parent = UnixStream::connect(dir.join(PARENT_SOCK))
        .map_err(|e| format!("connect {PARENT_SOCK}: {e}"))?;
    crate::socket::write_frame(&mut parent, 0, 0, &report)
        .map_err(|e| format!("report to parent: {e}"))?;
    // Outcome::Err is reported as a *successful* delivery of a failure
    // report; the process still exits 0 so the parent distinguishes
    // "worker returned Err" from "worker process died".
    Ok(())
}

/// One rank's parsed report.
struct WorkerReport {
    rank: usize,
    stats: CommStats,
    outcome: std::result::Result<Vec<u8>, String>,
}

fn parse_report(payload: &[u8]) -> Option<WorkerReport> {
    let mut input = payload;
    let rank = wire::get_usize(&mut input)?;
    let ok = wire::get_u64(&mut input)?;
    let stats = CommStats::decode(&mut input)?;
    let outcome = match ok {
        1 => Ok(wire::get_bytes(&mut input)?),
        0 => Err(wire::get_str(&mut input)?),
        _ => return None,
    };
    input.is_empty().then_some(WorkerReport { rank, stats, outcome })
}

/// Creates a unique rendezvous directory under the system temp dir.
fn fresh_socket_dir() -> std::io::Result<PathBuf> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dmbs-mesh-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

fn setup_err(step: &str, err: impl std::fmt::Display) -> CommError {
    CommError::SocketSetup { message: format!("{step}: {err}") }
}

/// Reads a child's stderr tail for diagnostics (best effort).
fn drain_stderr(child: &mut std::process::Child) -> String {
    let Some(mut stderr) = child.stderr.take() else { return String::new() };
    let mut buf = String::new();
    let _ = stderr.read_to_string(&mut buf);
    let trimmed = buf.trim();
    if trimmed.is_empty() {
        String::new()
    } else {
        // Keep the tail: panics print last.
        let tail: String =
            trimmed.chars().rev().take(500).collect::<Vec<_>>().into_iter().rev().collect();
        format!(": {tail}")
    }
}

fn kill_all(children: &mut [(usize, std::process::Child)]) {
    for (_, child) in children.iter_mut() {
        let _ = child.kill();
    }
    for (_, child) in children.iter_mut() {
        let _ = child.wait();
    }
}

/// Spawns one process per rank, collects their reports, and maps failures
/// to typed errors.  See the module docs for the protocol.
pub(crate) fn run_socket_workers(
    size: usize,
    cost: CostModel,
    launch: &SocketLaunch,
    name: &str,
    job: &[u8],
) -> Result<Vec<RankOutput<Vec<u8>>>> {
    let dir = fresh_socket_dir().map_err(|e| setup_err("create socket dir", e))?;
    let result = run_socket_workers_in(&dir, size, cost, launch, name, job);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn run_socket_workers_in(
    dir: &Path,
    size: usize,
    cost: CostModel,
    launch: &SocketLaunch,
    name: &str,
    job: &[u8],
) -> Result<Vec<RankOutput<Vec<u8>>>> {
    std::fs::write(dir.join(JOB_FILE), job).map_err(|e| setup_err("write job", e))?;
    let listener =
        UnixListener::bind(dir.join(PARENT_SOCK)).map_err(|e| setup_err("bind parent.sock", e))?;
    listener.set_nonblocking(true).map_err(|e| setup_err("parent nonblocking", e))?;

    let exe = std::env::current_exe().map_err(|e| setup_err("current_exe", e))?;
    let timeout = Duration::from_millis(launch.timeout_ms);
    let mut children: Vec<(usize, std::process::Child)> = Vec::with_capacity(size);
    for rank in 0..size {
        let spawned = std::process::Command::new(&exe)
            .args(&launch.worker_args)
            .env(ENV_WORKER, name)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_SIZE, size.to_string())
            .env(ENV_DIR, dir.as_os_str())
            .env(ENV_ALPHA, cost.alpha.to_bits().to_string())
            .env(ENV_BETA, cost.beta.to_bits().to_string())
            .env(ENV_TIMEOUT, launch.timeout_ms.to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn();
        match spawned {
            Ok(child) => children.push((rank, child)),
            Err(e) => {
                kill_all(&mut children);
                return Err(setup_err(&format!("spawn rank {rank}"), e));
            }
        }
    }

    // Collect one report per rank, watching for child deaths the whole time.
    let deadline = Instant::now() + timeout;
    let mut reports: Vec<Option<WorkerReport>> = (0..size).map(|_| None).collect();
    let mut collected = 0;
    while collected < size {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_read_timeout(Some(timeout))
                    .map_err(|e| setup_err("report timeout", e))?;
                let frame = crate::socket::read_frame(&mut stream);
                match frame {
                    Ok(Some((_, _, payload))) => match parse_report(&payload) {
                        Some(report) if report.rank < size && reports[report.rank].is_none() => {
                            let rank = report.rank;
                            reports[rank] = Some(report);
                            collected += 1;
                        }
                        _ => {
                            kill_all(&mut children);
                            return Err(setup_err("parse worker report", "malformed report"));
                        }
                    },
                    Ok(None) | Err(_) => {
                        kill_all(&mut children);
                        return Err(setup_err("read worker report", "stream died mid-report"));
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // No report pending: check for dead children, then deadline.
                let mut dead: Option<(usize, String)> = None;
                for (rank, child) in children.iter_mut() {
                    if reports[*rank].is_some() {
                        continue;
                    }
                    if let Ok(Some(status)) = child.try_wait() {
                        let detail = drain_stderr(child);
                        dead = Some((
                            *rank,
                            format!("rank process exited with {status} before reporting{detail}"),
                        ));
                        break;
                    }
                }
                if let Some((rank, message)) = dead {
                    kill_all(&mut children);
                    return Err(CommError::RankPanicked { rank, message });
                }
                if Instant::now() >= deadline {
                    kill_all(&mut children);
                    return Err(CommError::Timeout {
                        rank: usize::MAX,
                        waiting_for: usize::MAX,
                        millis: launch.timeout_ms,
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                kill_all(&mut children);
                return Err(setup_err("accept report", e));
            }
        }
    }

    // All ranks reported; reap the children.
    for (rank, child) in children.iter_mut() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                let detail = drain_stderr(child);
                return Err(CommError::RankPanicked {
                    rank: *rank,
                    message: format!("rank process exited with {status} after reporting{detail}"),
                });
            }
            Err(e) => return Err(setup_err(&format!("wait rank {rank}"), e)),
        }
    }

    let mut outputs = Vec::with_capacity(size);
    for report in reports.into_iter().flatten() {
        match report.outcome {
            Ok(bytes) => {
                outputs.push(RankOutput { rank: report.rank, value: bytes, stats: report.stats })
            }
            Err(message) => return Err(CommError::WorkerFailed { rank: report.rank, message }),
        }
    }
    outputs.sort_by_key(|o| o.rank);
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, TransportSelect};

    /// Workers available when this library's *test binary* is re-executed
    /// as a rank process.
    fn test_registry() -> WorkerRegistry {
        WorkerRegistry::new()
            .with("dmbs.test.allreduce", |comm, job| {
                let offset = job.first().copied().unwrap_or(0) as usize;
                let total = comm
                    .allreduce(comm.rank() + offset, |a, b| a + b)
                    .map_err(|e| e.to_string())?;
                let mut out = Vec::new();
                wire::put_usize(&mut out, total);
                Ok(out)
            })
            .with("dmbs.test.traffic", |comm, job| {
                // Deterministic all-to-allv traffic whose counters the
                // parent cross-checks against the simulator.
                let words = job.first().copied().unwrap_or(1) as usize;
                let sends: Vec<Vec<f64>> =
                    (0..comm.size()).map(|d| vec![d as f64; words]).collect();
                let received = comm.all_to_allv(sends).map_err(|e| e.to_string())?;
                let mut out = Vec::new();
                wire::put_usize(&mut out, received.len());
                Ok(out)
            })
            .with("dmbs.test.exit", |comm, _job| {
                // Rank 1 dies mid-collective; everyone else is left waiting
                // inside the allreduce.
                if comm.rank() == 1 {
                    std::process::exit(7);
                }
                comm.allreduce(1usize, |a, b| a + b).map_err(|e| e.to_string())?;
                Ok(Vec::new())
            })
            .with("dmbs.test.apperr", |comm, _job| {
                if comm.rank() == 0 {
                    Err("rank 0 rejects the job".to_string())
                } else {
                    let _ = comm.barrier();
                    Ok(Vec::new())
                }
            })
    }

    /// The re-exec entry point: when the parent spawns this test binary as
    /// a rank process, argv targets exactly this test, which dispatches to
    /// the worker and exits.  Without the rendezvous env (a normal test
    /// run) it is a no-op.
    #[test]
    fn socket_worker_shim() {
        run_if_worker(&test_registry());
    }

    fn launch() -> SocketLaunch {
        SocketLaunch::for_test_binary("process::tests::socket_worker_shim").timeout_ms(20_000)
    }

    #[test]
    fn registry_register_find_and_override() {
        let mut r = WorkerRegistry::new();
        assert!(r.find("a").is_none());
        r.register("a", |_, _| Ok(vec![1]));
        r.register("b", |_, _| Ok(vec![2]));
        r.register("a", |_, _| Ok(vec![3])); // override wins
        let f = r.find("a").unwrap();
        let rt = Runtime::new(1).unwrap();
        let out = rt.run(|comm| f(comm, &[])).unwrap();
        assert_eq!(out[0].value, Ok(vec![3]));
        assert_eq!(r.names(), vec!["b", "a"]);
        assert!(format!("{r:?}").contains('b'));
    }

    #[test]
    fn socket_workers_run_a_real_multi_process_allreduce() {
        let rt = Runtime::new(3).unwrap().with_transport(TransportSelect::UnixSocket(launch()));
        let outs = rt.run_worker(&test_registry(), "dmbs.test.allreduce", &[10]).unwrap();
        assert_eq!(outs.len(), 3);
        for (rank, out) in outs.iter().enumerate() {
            assert_eq!(out.rank, rank);
            let mut input = out.value.as_slice();
            // Sum of (rank + 10) over 3 ranks = 3 + 30.
            assert_eq!(wire::get_usize(&mut input), Some(33));
        }
    }

    #[test]
    fn comm_stats_cross_the_process_boundary_and_match_the_simulator() {
        let registry = test_registry();
        let job = [4u8]; // 4 words to each destination
        let sim = Runtime::new(3).unwrap();
        let sim_outs = sim.run_worker(&registry, "dmbs.test.traffic", &job).unwrap();
        let real = Runtime::new(3).unwrap().with_transport(TransportSelect::UnixSocket(launch()));
        let real_outs = real.run_worker(&registry, "dmbs.test.traffic", &job).unwrap();
        for (s, r) in sim_outs.iter().zip(&real_outs) {
            assert_eq!(s.rank, r.rank);
            assert_eq!(s.value, r.value);
            // The serialized-back CommStats must match the simulator's
            // counters field for field.
            assert_eq!(s.stats.messages, r.stats.messages, "messages at rank {}", s.rank);
            assert_eq!(s.stats.words_sent, r.stats.words_sent, "words at rank {}", s.rank);
            assert_eq!(s.stats.modeled_time.to_bits(), r.stats.modeled_time.to_bits());
        }
    }

    #[test]
    fn rank_process_exit_mid_collective_is_rank_panicked_not_a_hang() {
        let rt = Runtime::new(3)
            .unwrap()
            .with_transport(TransportSelect::UnixSocket(launch().timeout_ms(10_000)));
        let start = Instant::now();
        match rt.run_worker(&test_registry(), "dmbs.test.exit", &[]) {
            Err(CommError::RankPanicked { rank: 1, message }) => {
                assert!(message.contains("exited"), "message: {message}");
            }
            other => panic!("expected RankPanicked for rank 1, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(60), "teardown must not hang");
    }

    #[test]
    fn worker_app_error_is_worker_failed_with_rank() {
        let rt = Runtime::new(2).unwrap().with_transport(TransportSelect::UnixSocket(launch()));
        match rt.run_worker(&test_registry(), "dmbs.test.apperr", &[]) {
            Err(CommError::WorkerFailed { rank: 0, message }) => {
                assert!(message.contains("rejects"));
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn unregistered_worker_in_child_fails_fast() {
        // The parent-side registry lookup happens first, so dispatching an
        // unknown name is rejected before any process spawns.
        let rt = Runtime::new(2).unwrap().with_transport(TransportSelect::UnixSocket(launch()));
        assert!(matches!(
            rt.run_worker(&test_registry(), "dmbs.test.nope", &[]),
            Err(CommError::InvalidConfig(_))
        ));
    }

    #[test]
    fn simulator_and_socket_agree_on_worker_results() {
        let registry = test_registry();
        let sim = Runtime::new(2).unwrap();
        let sim_outs = sim.run_worker(&registry, "dmbs.test.allreduce", &[5]).unwrap();
        let real = Runtime::new(2).unwrap().with_transport(TransportSelect::UnixSocket(launch()));
        let real_outs = real.run_worker(&registry, "dmbs.test.allreduce", &[5]).unwrap();
        for (s, r) in sim_outs.iter().zip(&real_outs) {
            assert_eq!(s.value, r.value);
            assert_eq!(s.stats.words_sent, r.stats.words_sent);
        }
    }

    #[test]
    fn report_codec_round_trips() {
        let mut stats = CommStats::new();
        stats.record(12, &CostModel::new(1.0, 0.25));
        let mut report = Vec::new();
        wire::put_usize(&mut report, 2);
        wire::put_u64(&mut report, 1);
        stats.encode(&mut report);
        wire::put_bytes(&mut report, &[9, 9]);
        let parsed = parse_report(&report).unwrap();
        assert_eq!(parsed.rank, 2);
        assert_eq!(parsed.stats.words_sent, 12);
        assert_eq!(parsed.outcome, Ok(vec![9, 9]));
        // Truncated reports are rejected, not mis-parsed.
        assert!(parse_report(&report[..report.len() - 1]).is_none());
        assert!(parse_report(&[]).is_none());
    }
}

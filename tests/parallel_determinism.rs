//! The `Parallelism` knob must never change *what* is computed — only how
//! fast.  These tests pin that contract end to end: sampled epochs, streamed
//! minibatches and trained models are byte-identical at 1, 2 and 8 threads
//! across every backend.

mod common;

use common::random_batches;
use dmbs::gnn::{Minibatch, TrainingSession};
use dmbs::graph::datasets::Dataset;
use dmbs::graph::generators::{rmat, RmatConfig};
use dmbs::matrix::pool::Parallelism;
use dmbs::sampling::{
    BulkSamplerConfig, DistConfig, GraphSageSampler, LadiesSampler, LocalBackend,
    Partitioned1p5dBackend, ReplicatedBackend, SamplingBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn tiny_dataset(seed: u64) -> Dataset {
    common::products_dataset(7, 8, 4, 0.5, None, seed) // 128 vertices
}

#[test]
fn local_backend_epochs_are_thread_count_invariant() {
    let graph = rmat(&RmatConfig::new(7, 6), &mut StdRng::seed_from_u64(3)).unwrap();
    let a = graph.adjacency();
    let batches = random_batches(graph.num_vertices(), 6, 8);
    let sampler = GraphSageSampler::new(vec![4, 3]);

    let serial = LocalBackend::new(BulkSamplerConfig::new(8, 3))
        .unwrap()
        .sample_epoch(&sampler, a, &batches, 11)
        .unwrap();
    for threads in THREAD_COUNTS {
        let backend = LocalBackend::new(BulkSamplerConfig::new(8, 3))
            .unwrap()
            .with_parallelism(Parallelism::new(threads));
        let epoch = backend.sample_epoch(&sampler, a, &batches, 11).unwrap();
        assert_eq!(
            epoch.output.minibatches, serial.output.minibatches,
            "local backend diverged at {threads} threads"
        );
    }
}

#[test]
fn replicated_and_partitioned_backends_are_thread_count_invariant() {
    let graph = rmat(&RmatConfig::new(7, 6), &mut StdRng::seed_from_u64(4)).unwrap();
    let a = graph.adjacency();
    let batches = random_batches(graph.num_vertices(), 6, 8);
    let sage = GraphSageSampler::new(vec![4, 3]);
    let ladies = LadiesSampler::new(2, 12);

    let dist = DistConfig::new(4, 2, BulkSamplerConfig::new(8, 6));
    let rep_serial =
        ReplicatedBackend::new(dist).unwrap().sample_epoch(&sage, a, &batches, 5).unwrap();
    let part_serial =
        Partitioned1p5dBackend::new(dist).unwrap().sample_epoch(&ladies, a, &batches, 5).unwrap();
    for threads in THREAD_COUNTS {
        let par = Parallelism::new(threads);
        let rep = ReplicatedBackend::new(dist.with_parallelism(par))
            .unwrap()
            .sample_epoch(&sage, a, &batches, 5)
            .unwrap();
        assert_eq!(
            rep.output.minibatches, rep_serial.output.minibatches,
            "replicated backend diverged at {threads} threads"
        );
        let part = Partitioned1p5dBackend::new(dist.with_parallelism(par))
            .unwrap()
            .sample_epoch(&ladies, a, &batches, 5)
            .unwrap();
        assert_eq!(
            part.output.minibatches, part_serial.output.minibatches,
            "partitioned backend diverged at {threads} threads"
        );
    }
}

fn streamed_epochs(threads: usize) -> Vec<Vec<Minibatch>> {
    let session = TrainingSession::builder()
        .dataset(tiny_dataset(9))
        .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
        .backend(LocalBackend::new(BulkSamplerConfig::new(16, 4)).unwrap())
        .parallelism(Parallelism::new(threads))
        .hidden_dim(16)
        .epochs(2)
        .seed(42)
        .build()
        .unwrap();
    (0..2)
        .map(|epoch| session.stream(epoch).unwrap().collect::<Result<Vec<_>, _>>().unwrap())
        .collect()
}

#[test]
fn stream_is_invariant_under_parallelism() {
    // The ISSUE contract: MinibatchStream epochs are invariant under the
    // `Parallelism` setting — prefetch plus parallel kernels change nothing.
    let serial = streamed_epochs(1);
    for threads in [2usize, 8] {
        let streamed = streamed_epochs(threads);
        assert_eq!(streamed, serial, "stream diverged at {threads} threads");
    }
}

#[test]
fn training_is_invariant_under_parallelism() {
    let train = |threads: usize| {
        TrainingSession::builder()
            .dataset(tiny_dataset(13))
            .sampler(GraphSageSampler::new(vec![5, 5]).with_self_loops())
            .backend(LocalBackend::new(BulkSamplerConfig::new(16, 4)).unwrap())
            .parallelism(Parallelism::new(threads))
            .hidden_dim(16)
            .epochs(1)
            .seed(7)
            .build()
            .unwrap()
            .train()
            .unwrap()
    };
    let serial = train(1);
    for threads in [2usize, 8] {
        let report = train(threads);
        assert_eq!(report.epochs.len(), serial.epochs.len());
        for (got, want) in report.epochs.iter().zip(&serial.epochs) {
            assert_eq!(got.mean_loss, want.mean_loss, "loss diverged at {threads} threads");
        }
        assert_eq!(report.test_accuracy, serial.test_accuracy);
    }
}

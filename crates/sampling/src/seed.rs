//! The shared splitmix64 stream-seed finalizer.
//!
//! Both decorrelated-stream derivations in this crate — per-row ITS streams
//! ([`crate::its::row_stream_seed`]) and per-request serving streams
//! ([`crate::micro::request_stream_seed`]) — hash `(base_seed, index)` with
//! the same splitmix64 finalizer.  The constants are load-bearing: committed
//! sampler outputs (and the CI baselines derived from them) pin the exact
//! bit pattern, so the finalizer lives here once and both call sites stay
//! byte-identical by construction.

/// Derives the seed of stream `index` under `base_seed`: the splitmix64
/// finalizer over `base_seed ^ index·φ64`, where `φ64` is the 64-bit golden
/// ratio (the splitmix64 increment).  Adjacent indices map to decorrelated
/// streams, and the output depends only on `(base_seed, index)` — never on
/// evaluation order — which is what makes per-row parallel ITS and
/// per-request micro-bulk coalescing byte-transparent.
pub fn stream_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalizer_bit_pattern_is_pinned() {
        // Golden values: changing any constant or shift breaks every
        // committed sampler baseline, so the exact outputs are pinned here.
        assert_eq!(stream_seed(0, 0), 0);
        assert_eq!(stream_seed(42, 0), 0xA759_EA27_D472_7622);
        assert_eq!(stream_seed(0, 1), 0xE220_A839_7B1D_CDAF);
        assert_eq!(stream_seed(42, 7), 0x53AD_348A_F3DD_AF4B);
    }

    #[test]
    fn both_public_wrappers_are_byte_identical_to_the_helper() {
        // Cross-link: `its::row_stream_seed` and `micro::request_stream_seed`
        // must remain thin wrappers over this helper.
        for base in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            for idx in [0u64, 1, 2, 31, 1 << 20, u64::MAX] {
                assert_eq!(crate::its::row_stream_seed(base, idx as usize), stream_seed(base, idx));
                assert_eq!(crate::micro::request_stream_seed(base, idx), stream_seed(base, idx));
                assert_eq!(
                    crate::its::row_stream_seed(base, idx as usize),
                    crate::micro::request_stream_seed(base, idx),
                );
            }
        }
    }

    #[test]
    fn adjacent_indices_decorrelate() {
        let a = stream_seed(7, 0);
        let b = stream_seed(7, 1);
        // Weak sanity: outputs differ and differ in many bits.
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() >= 8);
    }
}

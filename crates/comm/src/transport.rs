//! The pluggable transport layer under the collectives.
//!
//! [`Communicator`](crate::Communicator) and every collective — blocking and
//! nonblocking alike — are written against the [`Transport`] trait: a
//! point-to-point carrier of tagged [`Frame`]s.  Two implementations ship:
//!
//! * [`SimTransport`] — the original in-process rank simulator.  Ranks are
//!   threads; a frame's payload crosses as a `Box<dyn Any>` with **no
//!   serialization**, exactly as before the trait extraction.
//! * [`UnixSocketTransport`](crate::UnixSocketTransport) — one OS process
//!   per rank, frames length-prefixed over Unix domain sockets.
//!
//! The [`TransportMode`] tells the communicator how to package payloads:
//! in-process transports move boxed values, wire transports move bytes
//! produced by the [`Payload`](crate::Payload) codec.  Communication
//! *accounting* ([`CommStats`](crate::CommStats) words/messages and the α–β
//! bill) is recorded by the communicator **before** the frame reaches any
//! transport, so the deterministic counters are identical across backends by
//! construction — the invariant the cross-transport equivalence sweep pins.

use std::any::Any;
use std::fmt;

use crossbeam::channel::{Receiver, Sender};

use crate::error::CommError;
use crate::Result;

/// How a transport carries payloads, which decides how the communicator
/// packages them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Payloads cross as boxed values within one address space.
    InProcess,
    /// Payloads cross as bytes; the communicator encodes/decodes via the
    /// [`Payload`](crate::Payload) wire codec.
    Wire,
}

/// The body of a [`Frame`]: a boxed value (in-process) or encoded bytes
/// tagged with the payload's structural type code (wire).
pub enum FrameBody {
    /// An in-process payload, downcast on receive.
    Boxed(Box<dyn Any + Send>),
    /// A wire payload.
    Bytes {
        /// Structural code of the encoded type, checked before decoding.
        type_code: u64,
        /// The encoded payload.
        bytes: Vec<u8>,
    },
}

impl fmt::Debug for FrameBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameBody::Boxed(_) => f.write_str("FrameBody::Boxed(..)"),
            FrameBody::Bytes { type_code, bytes } => f
                .debug_struct("FrameBody::Bytes")
                .field("type_code", type_code)
                .field("len", &bytes.len())
                .finish(),
        }
    }
}

/// One tagged point-to-point message as seen by a transport.
#[derive(Debug)]
pub struct Frame {
    /// MPI-style tag: `0` for blocking traffic, a fresh per-round tag for
    /// each nonblocking collective.
    pub tag: u64,
    /// The payload.
    pub body: FrameBody,
}

/// A point-to-point carrier of tagged frames between `size` ranks.
///
/// Implementations must deliver frames from a given peer **in order**; tag
/// matching (and the out-of-order stash it requires) lives above the
/// transport, in the communicator.
pub trait Transport: Send + fmt::Debug {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// World size.
    fn size(&self) -> usize;

    /// How payloads must be packaged for this transport.
    fn mode(&self) -> TransportMode;

    /// Sends one frame to `to`.  `to` is already validated by the
    /// communicator to be in `0..size` and different from `self.rank()`.
    fn send(&mut self, to: usize, frame: Frame) -> Result<()>;

    /// Receives the next in-order frame from `from`, blocking (with the
    /// transport's own timeout policy) until one arrives.
    fn recv(&mut self, from: usize) -> Result<Frame>;
}

/// The in-process simulator transport: one crossbeam channel pair per peer,
/// ranks running as threads of one process.
///
/// This is a direct re-packaging of the channel matrix the pre-trait
/// `Communicator` owned; semantics (unbounded buffering, in-order delivery,
/// disconnect on peer exit) are unchanged.
pub struct SimTransport {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Frame>>,
    receivers: Vec<Receiver<Frame>>,
}

impl fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimTransport").field("rank", &self.rank).field("size", &self.size).finish()
    }
}

impl SimTransport {
    /// Builds the simulator endpoint for `rank` out of one sender and one
    /// receiver per peer (the rank's own slots are never used).
    pub fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Frame>>,
        receivers: Vec<Receiver<Frame>>,
    ) -> Self {
        debug_assert_eq!(senders.len(), size);
        debug_assert_eq!(receivers.len(), size);
        SimTransport { rank, size, senders, receivers }
    }
}

impl Transport for SimTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn mode(&self) -> TransportMode {
        TransportMode::InProcess
    }

    fn send(&mut self, to: usize, frame: Frame) -> Result<()> {
        self.senders[to].send(frame).map_err(|_| CommError::Disconnected { from: to })
    }

    fn recv(&mut self, from: usize) -> Result<Frame> {
        self.receivers[from].recv().map_err(|_| CommError::Disconnected { from })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn pair() -> (SimTransport, SimTransport) {
        let (s01, r01) = unbounded::<Frame>();
        let (s10, r10) = unbounded::<Frame>();
        let (self0_s, self0_r) = unbounded::<Frame>();
        let (self1_s, self1_r) = unbounded::<Frame>();
        let t0 = SimTransport::new(0, 2, vec![self0_s, s01], vec![self0_r, r10]);
        let t1 = SimTransport::new(1, 2, vec![s10, self1_s], vec![r01, self1_r]);
        (t0, t1)
    }

    #[test]
    fn frames_cross_in_order() {
        let (mut t0, mut t1) = pair();
        for tag in [7u64, 8, 9] {
            t0.send(1, Frame { tag, body: FrameBody::Boxed(Box::new(tag as usize)) }).unwrap();
        }
        for tag in [7u64, 8, 9] {
            let f = t1.recv(0).unwrap();
            assert_eq!(f.tag, tag);
        }
        assert_eq!(t0.mode(), TransportMode::InProcess);
        assert_eq!((t0.rank(), t1.rank()), (0, 1));
        assert_eq!(t0.size(), 2);
    }

    #[test]
    fn dropped_peer_is_disconnected() {
        let (t0, mut t1) = pair();
        drop(t0);
        match t1.recv(0) {
            Err(CommError::Disconnected { from: 0 }) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn frame_body_debug_is_compact() {
        let b = FrameBody::Bytes { type_code: 5, bytes: vec![1, 2, 3] };
        let s = format!("{b:?}");
        assert!(s.contains("type_code") && s.contains("len"));
        let s = format!("{:?}", FrameBody::Boxed(Box::new(1usize)));
        assert!(s.contains("Boxed"));
    }
}

//! Minibatch construction.
//!
//! Each epoch shuffles the training vertex set and splits it into minibatches
//! of `b` vertices.  The bulk sampler then samples `k` of these minibatches at
//! once (§4.1.4); in the distributed pipeline the `k` bulk-sampled minibatches
//! are divided between the `p` processes so each trains `k/p` of them (§6.1).

use crate::graph::GraphError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A plan dividing a training set into minibatches, and minibatches into bulk
/// groups of `k`.
///
/// # Example
///
/// ```
/// use dmbs_graph::minibatch::MinibatchPlan;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), dmbs_graph::GraphError> {
/// let train: Vec<usize> = (0..100).collect();
/// let mut rng = StdRng::seed_from_u64(0);
/// let plan = MinibatchPlan::new(&train, 32, &mut rng)?;
/// assert_eq!(plan.num_batches(), 4); // 32 + 32 + 32 + 4
/// assert_eq!(plan.batch(3).len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinibatchPlan {
    batch_size: usize,
    batches: Vec<Vec<usize>>,
}

impl MinibatchPlan {
    /// Shuffles `train_set` and splits it into minibatches of `batch_size`
    /// (the final batch may be smaller).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if `batch_size == 0` or the
    /// training set is empty.
    pub fn new<R: Rng + ?Sized>(
        train_set: &[usize],
        batch_size: usize,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        if batch_size == 0 {
            return Err(GraphError::InvalidConfig("batch_size must be positive".into()));
        }
        if train_set.is_empty() {
            return Err(GraphError::InvalidConfig("training set must not be empty".into()));
        }
        let mut shuffled = train_set.to_vec();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let batches = shuffled.chunks(batch_size).map(|c| c.to_vec()).collect();
        Ok(MinibatchPlan { batch_size, batches })
    }

    /// Builds a plan without shuffling (deterministic order), useful for
    /// tests and for comparing samplers on identical batches.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] if `batch_size == 0` or the
    /// training set is empty.
    pub fn sequential(train_set: &[usize], batch_size: usize) -> Result<Self, GraphError> {
        if batch_size == 0 {
            return Err(GraphError::InvalidConfig("batch_size must be positive".into()));
        }
        if train_set.is_empty() {
            return Err(GraphError::InvalidConfig("training set must not be empty".into()));
        }
        let batches = train_set.chunks(batch_size).map(|c| c.to_vec()).collect();
        Ok(MinibatchPlan { batch_size, batches })
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of minibatches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// The vertices of minibatch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_batches`.
    pub fn batch(&self, i: usize) -> &[usize] {
        &self.batches[i]
    }

    /// All minibatches.
    pub fn batches(&self) -> &[Vec<usize>] {
        &self.batches
    }

    /// Splits the minibatches into bulk groups of at most `k` batches each
    /// (the granularity at which the bulk sampler runs, §6.1).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn bulk_groups(&self, k: usize) -> Vec<&[Vec<usize>]> {
        assert!(k > 0, "bulk size k must be positive");
        self.batches.chunks(k).collect()
    }

    /// Assigns minibatch indices to `p` processes in contiguous chunks, the
    /// way the pipeline divides a bulk of `k` sampled minibatches so that each
    /// process trains `k/p` of them.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn assign_to_processes(&self, p: usize) -> Vec<Vec<usize>> {
        assert!(p > 0, "process count must be positive");
        let mut assignment = vec![Vec::new(); p];
        for (i, _) in self.batches.iter().enumerate() {
            assignment[i % p].push(i);
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn covers_training_set_exactly_once() {
        let train: Vec<usize> = (0..103).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let plan = MinibatchPlan::new(&train, 20, &mut rng).unwrap();
        assert_eq!(plan.num_batches(), 6);
        let mut all: Vec<usize> = plan.batches().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, train);
    }

    #[test]
    fn shuffling_changes_order_but_not_content() {
        let train: Vec<usize> = (0..64).collect();
        let plan = MinibatchPlan::new(&train, 64, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_ne!(plan.batch(0).to_vec(), train);
        let mut sorted = plan.batch(0).to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, train);
    }

    #[test]
    fn sequential_preserves_order() {
        let train: Vec<usize> = vec![5, 9, 2, 7];
        let plan = MinibatchPlan::sequential(&train, 3).unwrap();
        assert_eq!(plan.batch(0), &[5, 9, 2]);
        assert_eq!(plan.batch(1), &[7]);
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(MinibatchPlan::new(&[], 4, &mut rng).is_err());
        assert!(MinibatchPlan::new(&[1, 2], 0, &mut rng).is_err());
        assert!(MinibatchPlan::sequential(&[], 4).is_err());
        assert!(MinibatchPlan::sequential(&[1], 0).is_err());
    }

    #[test]
    fn bulk_groups_chunking() {
        let train: Vec<usize> = (0..50).collect();
        let plan = MinibatchPlan::sequential(&train, 10).unwrap();
        let groups = plan.bulk_groups(2);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[2].len(), 1);
    }

    #[test]
    fn process_assignment_is_balanced() {
        let train: Vec<usize> = (0..70).collect();
        let plan = MinibatchPlan::sequential(&train, 10).unwrap();
        let assign = plan.assign_to_processes(3);
        assert_eq!(assign.len(), 3);
        let sizes: Vec<usize> = assign.iter().map(|a| a.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    #[should_panic(expected = "bulk size")]
    fn bulk_groups_zero_panics() {
        let plan = MinibatchPlan::sequential(&[1, 2, 3], 2).unwrap();
        plan.bulk_groups(0);
    }
}
